// Package rig implements the Region Inclusion Graph of Section 3.2 of the
// paper: a directed graph over region names whose edges state which direct
// inclusions between region instances are possible. The RIG plays the role
// of a schema for region expressions — two expressions are equivalent with
// respect to a RIG when they agree on every instance satisfying it
// (Definition 3.2) — and supplies the path analyses behind the optimization
// algorithm (Propositions 3.3 and 3.5), the projection onto a partially
// indexed subset of names (Section 6.1), and the exactness condition for
// partial indexing (Section 6.3).
package rig

import (
	"fmt"
	"sort"
	"strings"

	"qof/internal/index"
)

// Graph is a region inclusion graph. Nodes are region names; an edge
// (A, B) states that an A region may directly include a B region. Graphs
// may contain cycles (self-nested regions) and self-loops.
type Graph struct {
	nodes []string
	idx   map[string]int
	succ  [][]int
	pred  [][]int
}

// New creates a graph with the given nodes and no edges.
func New(nodes ...string) *Graph {
	g := &Graph{idx: make(map[string]int, len(nodes))}
	for _, n := range nodes {
		g.ensure(n)
	}
	return g
}

func (g *Graph) ensure(n string) int {
	if i, ok := g.idx[n]; ok {
		return i
	}
	i := len(g.nodes)
	g.nodes = append(g.nodes, n)
	g.idx[n] = i
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return i
}

// AddEdge adds the edge (from, to), creating missing nodes. Adding an edge
// twice is a no-op.
func (g *Graph) AddEdge(from, to string) {
	f, t := g.ensure(from), g.ensure(to)
	for _, s := range g.succ[f] {
		if s == t {
			return
		}
	}
	g.succ[f] = append(g.succ[f], t)
	g.pred[t] = append(g.pred[t], f)
}

// HasNode reports whether the name is a node of the graph.
func (g *Graph) HasNode(n string) bool {
	_, ok := g.idx[n]
	return ok
}

// HasEdge reports whether the edge (from, to) exists.
func (g *Graph) HasEdge(from, to string) bool {
	f, ok := g.idx[from]
	if !ok {
		return false
	}
	t, ok := g.idx[to]
	if !ok {
		return false
	}
	for _, s := range g.succ[f] {
		if s == t {
			return true
		}
	}
	return false
}

// Nodes returns the node names in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Successors returns the names reachable from n by one edge, sorted.
func (g *Graph) Successors(n string) []string {
	i, ok := g.idx[n]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.succ[i]))
	for _, s := range g.succ[i] {
		out = append(out, g.nodes[s])
	}
	sort.Strings(out)
	return out
}

// EdgeCount reports the number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// String renders the graph as sorted "A -> B" lines, for goldens and debug.
func (g *Graph) String() string {
	var lines []string
	for f, ss := range g.succ {
		for _, t := range ss {
			lines = append(lines, g.nodes[f]+" -> "+g.nodes[t])
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// reaches reports whether to is reachable from from by a non-empty walk.
func (g *Graph) reaches(from, to int) bool {
	seen := make([]bool, len(g.nodes))
	stack := append([]int(nil), g.succ[from]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, g.succ[v]...)
	}
	return false
}

// HasPath reports whether a non-empty path from one name to another exists.
// It is the test behind Proposition 3.3(ii): a subexpression Ri ⊃ Rj is
// trivially empty when no path from Ri to Rj exists.
func (g *Graph) HasPath(from, to string) bool {
	f, ok := g.idx[from]
	if !ok {
		return false
	}
	t, ok := g.idx[to]
	if !ok {
		return false
	}
	return g.reaches(f, t)
}

// OnlyPathIsEdge reports whether the edge (from, to) exists and is the only
// path from from to to — the first applicability condition of
// Proposition 3.5(a) for replacing ⊃d by ⊃.
func (g *Graph) OnlyPathIsEdge(from, to string) bool {
	if !g.HasEdge(from, to) {
		return false
	}
	f, t := g.idx[from], g.idx[to]
	for _, k := range g.succ[f] {
		if k != t && g.reaches(k, t) {
			return false // a path avoiding the edge's head exists
		}
		if k == t && g.reaches(t, t) {
			return false // the edge can be extended around a cycle at to
		}
	}
	// A longer path could also leave from again through a cycle back to
	// from; that is covered above because its second node is some k.
	return true
}

// AllPathsStartWithEdge reports whether the edge (from, to) exists and every
// path from from to to begins with it — the second applicability condition
// of Proposition 3.5(a), usable when to is the rightmost region of the
// expression.
func (g *Graph) AllPathsStartWithEdge(from, to string) bool {
	if !g.HasEdge(from, to) {
		return false
	}
	f, t := g.idx[from], g.idx[to]
	for _, k := range g.succ[f] {
		if k != t && g.reaches(k, t) {
			return false
		}
	}
	return true
}

// AllPathsEndWithEdge reports whether the edge (from, to) exists and every
// path from from to to ends with it — the mirror of AllPathsStartWithEdge
// used when optimizing ⊂d in projection chains, where evaluation travels
// from the contained region upward (Section 5.2).
func (g *Graph) AllPathsEndWithEdge(from, to string) bool {
	if !g.HasEdge(from, to) {
		return false
	}
	f, t := g.idx[from], g.idx[to]
	for _, k := range g.pred[t] {
		if k != f && g.reaches(f, k) {
			return false // a path arriving at to through k ≠ from exists
		}
	}
	return true
}

// AllPathsThrough reports whether every path from from to to passes through
// via as an interior node — the applicability condition of Proposition
// 3.5(b) for shortening Ri ⊃ Rj ⊃ Rk to Ri ⊃ Rk. Occurrences of via as the
// path's first or last node do not count: the rule's witness must be a
// region strictly between the outer and inner regions, so self-nested
// region names (via equal to from or to) need an interior visit.
func (g *Graph) AllPathsThrough(from, via, to string) bool {
	f, ok := g.idx[from]
	if !ok {
		return false
	}
	t, ok := g.idx[to]
	if !ok {
		return false
	}
	v, ok := g.idx[via]
	if !ok {
		// via is not even a node: every path trivially avoids it, so
		// the condition holds only if no path exists at all.
		return !g.reaches(f, t)
	}
	// Every path passes through via iff deleting via disconnects from→to.
	seen := make([]bool, len(g.nodes))
	seen[v] = true
	stack := []int{}
	for _, k := range g.succ[f] {
		if k == t {
			return false // an edge from→to avoids via
		}
		if !seen[k] {
			stack = append(stack, k)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		for _, k := range g.succ[x] {
			if k == t {
				return false
			}
			if !seen[k] {
				stack = append(stack, k)
			}
		}
	}
	return true
}

// IsPath reports whether the sequence of names follows edges of the graph.
// Query path expressions over natural structuring schemas match such paths
// (Section 5.1).
func (g *Graph) IsPath(names ...string) bool {
	if len(names) == 0 {
		return false
	}
	if !g.HasNode(names[0]) {
		return false
	}
	for i := 0; i+1 < len(names); i++ {
		if !g.HasEdge(names[i], names[i+1]) {
			return false
		}
	}
	return true
}

// Satisfies checks Definition 3.1: the instance satisfies the graph iff
// whenever a region of name A directly includes a region of name B — B's
// region is strictly inside A's with no other indexed region in between —
// the edge (A, B) is present. It returns nil on success and a descriptive
// error naming the first violation otherwise.
func (g *Graph) Satisfies(in *index.Instance) error {
	u := in.Universe()
	names := in.Names()
	// Map each region to the names holding it, so that a direct container
	// can be attributed to its region name(s).
	type key struct{ start, end int }
	holders := make(map[key][]string)
	for _, n := range names {
		for _, r := range in.MustRegion(n).Regions() {
			k := key{r.Start, r.End}
			holders[k] = append(holders[k], n)
		}
	}
	for _, b := range names {
		set := in.MustRegion(b)
		parents := u.DirectlyIncluding(u.All(), set)
		for _, p := range parents.Regions() {
			// p directly includes some region of b; find which.
			for _, r := range set.Regions() {
				if !p.StrictlyIncludes(r) {
					continue
				}
				if u.Between(p, r) {
					continue
				}
				for _, a := range holders[key{p.Start, p.End}] {
					if !g.HasEdge(a, b) {
						return fmt.Errorf("rig: instance violates graph: %s region %v directly includes %s region %v but edge (%s, %s) is absent",
							a, p, b, r, a, b)
					}
				}
			}
		}
	}
	return nil
}

// Project computes the RIG of a partially indexed subset of the nodes
// (Section 6.1): the projected graph has the indexed names as nodes and an
// edge (A, B) iff the full graph has a path from A to B whose intermediate
// nodes are all unindexed.
func (g *Graph) Project(indexed ...string) *Graph {
	return g.ProjectTransparent(indexed, indexed)
}

// ProjectTransparent generalizes Project for selectively indexed names: the
// projected graph has the keep names as nodes and an edge (A, B) iff the
// full graph has a path from A to B whose intermediate nodes avoid opaque.
// A selectively indexed region name is kept as a node but excluded from
// opaque — its regions may be missing on some path realizations, so it
// cannot be relied on to sit between two other regions.
func (g *Graph) ProjectTransparent(keepNames, opaque []string) *Graph {
	keep := make(map[string]bool, len(keepNames))
	for _, n := range keepNames {
		if g.HasNode(n) {
			keep[n] = true
		}
	}
	block := make(map[string]bool, len(opaque))
	for _, n := range opaque {
		block[n] = true
	}
	p := New()
	for _, n := range g.nodes {
		if keep[n] {
			p.ensure(n)
		}
	}
	for _, n := range g.nodes {
		if !keep[n] {
			continue
		}
		f := g.idx[n]
		// DFS from n travelling only through non-opaque nodes,
		// recording the kept nodes reached.
		seen := make([]bool, len(g.nodes))
		stack := append([]int(nil), g.succ[f]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			name := g.nodes[v]
			if keep[name] {
				p.AddEdge(n, name)
			}
			if !block[name] {
				stack = append(stack, g.succ[v]...)
			}
		}
	}
	return p
}

// PathCount classifies how many full-graph paths realize a projected edge.
type PathCount int

// Path multiplicities for UniquePath.
const (
	NoPath        PathCount = iota // no realizing path
	UniquePath                     // exactly one
	MultiplePaths                  // two or more (possibly infinitely many)
)

// CountRealizingPaths reports how many paths from from to to exist in the
// full graph with all intermediate nodes outside indexed. This is the test
// of Section 6.3: an inclusion expression over a partial index computes the
// exact answer iff every edge on the matched path is realized by a unique
// full-graph path; with multiple realizations it computes a superset.
func (g *Graph) CountRealizingPaths(from, to string, indexed map[string]bool) PathCount {
	f, ok := g.idx[from]
	if !ok {
		return NoPath
	}
	t, ok := g.idx[to]
	if !ok {
		return NoPath
	}
	// Build the set of permitted intermediate nodes.
	mid := make([]bool, len(g.nodes))
	for i, n := range g.nodes {
		mid[i] = !indexed[n]
	}
	// relevantFrom: nodes reachable from f via permitted intermediates.
	reachFwd := make([]bool, len(g.nodes))
	var stack []int
	for _, k := range g.succ[f] {
		stack = append(stack, k)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reachFwd[v] {
			continue
		}
		reachFwd[v] = true
		if v == t || !mid[v] {
			continue
		}
		stack = append(stack, g.succ[v]...)
	}
	if !reachFwd[t] {
		return NoPath
	}
	// reachBwd: nodes that reach t via permitted intermediates.
	reachBwd := make([]bool, len(g.nodes))
	for _, k := range g.pred[t] {
		stack = append(stack, k)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reachBwd[v] {
			continue
		}
		reachBwd[v] = true
		if v == f || !mid[v] {
			continue
		}
		stack = append(stack, g.pred[v]...)
	}
	// relevant intermediate nodes lie on some f→t path.
	relevant := func(v int) bool { return mid[v] && reachFwd[v] && reachBwd[v] && v != f && v != t }
	// A cycle among relevant nodes yields infinitely many walks.
	color := make([]int, len(g.nodes)) // 0 white, 1 grey, 2 black
	var cyclic bool
	var dfs func(v int)
	dfs = func(v int) {
		color[v] = 1
		for _, k := range g.succ[v] {
			if !relevant(k) {
				continue
			}
			if color[k] == 1 {
				cyclic = true
				return
			}
			if color[k] == 0 {
				dfs(k)
				if cyclic {
					return
				}
			}
		}
		color[v] = 2
	}
	for v := range g.nodes {
		if relevant(v) && color[v] == 0 {
			dfs(v)
			if cyclic {
				return MultiplePaths
			}
		}
	}
	// DAG over relevant nodes: count paths with memoization, capped at 2.
	memo := make(map[int]int)
	var count func(v int) int
	count = func(v int) int {
		if c, ok := memo[v]; ok {
			return c
		}
		total := 0
		for _, k := range g.succ[v] {
			if k == t {
				total++
			} else if relevant(k) {
				total += count(k)
			}
			if total >= 2 {
				break
			}
		}
		if total > 2 {
			total = 2
		}
		memo[v] = total
		return total
	}
	total := 0
	for _, k := range g.succ[f] {
		if k == t {
			total++
		} else if relevant(k) {
			total += count(k)
		}
		if total >= 2 {
			return MultiplePaths
		}
	}
	if total == 1 {
		return UniquePath
	}
	if total >= 2 {
		return MultiplePaths
	}
	return NoPath
}
