package rig

import (
	"strings"
	"testing"

	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/text"
)

// bibtexRIG builds the RIG of the paper's Section 3.2 example:
//
//	Reference -> Key | Authors | Title | Editors
//	Authors -> Name, Editors -> Name
//	Name -> First_Name | Last_Name
func bibtexRIG() *Graph {
	g := New("Reference", "Key", "Authors", "Title", "Editors", "Name", "First_Name", "Last_Name")
	g.AddEdge("Reference", "Key")
	g.AddEdge("Reference", "Authors")
	g.AddEdge("Reference", "Title")
	g.AddEdge("Reference", "Editors")
	g.AddEdge("Authors", "Name")
	g.AddEdge("Editors", "Name")
	g.AddEdge("Name", "First_Name")
	g.AddEdge("Name", "Last_Name")
	return g
}

func TestGraphBasics(t *testing.T) {
	g := bibtexRIG()
	if !g.HasNode("Reference") || g.HasNode("Nope") {
		t.Error("HasNode")
	}
	if !g.HasEdge("Reference", "Authors") || g.HasEdge("Authors", "Reference") {
		t.Error("HasEdge")
	}
	if g.HasEdge("Nope", "Authors") || g.HasEdge("Authors", "Nope") {
		t.Error("HasEdge with unknown nodes")
	}
	if got := g.EdgeCount(); got != 8 {
		t.Errorf("EdgeCount = %d", got)
	}
	g.AddEdge("Reference", "Authors") // duplicate is a no-op
	if got := g.EdgeCount(); got != 8 {
		t.Errorf("EdgeCount after dup = %d", got)
	}
	if got := g.Successors("Name"); len(got) != 2 || got[0] != "First_Name" || got[1] != "Last_Name" {
		t.Errorf("Successors = %v", got)
	}
	if got := g.Successors("Nope"); got != nil {
		t.Errorf("Successors unknown = %v", got)
	}
	if len(g.Nodes()) != 8 {
		t.Errorf("Nodes = %v", g.Nodes())
	}
	if !strings.Contains(g.String(), "Authors -> Name") {
		t.Errorf("String = %q", g.String())
	}
}

func TestHasPath(t *testing.T) {
	g := bibtexRIG()
	cases := []struct {
		from, to string
		want     bool
	}{
		{"Reference", "Last_Name", true},
		{"Reference", "Authors", true},
		{"Authors", "Last_Name", true},
		{"Title", "Last_Name", false}, // the paper's e3 trivial expression
		{"Last_Name", "Reference", false},
		{"Reference", "Reference", false}, // non-empty walks only
		{"Nope", "Reference", false},
		{"Reference", "Nope", false},
	}
	for _, tc := range cases {
		if got := g.HasPath(tc.from, tc.to); got != tc.want {
			t.Errorf("HasPath(%s, %s) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestHasPathWithCycle(t *testing.T) {
	g := New()
	g.AddEdge("Doc", "Section")
	g.AddEdge("Section", "Section")
	g.AddEdge("Section", "Para")
	if !g.HasPath("Section", "Section") {
		t.Error("self-loop gives a non-empty walk")
	}
	if !g.HasPath("Doc", "Para") {
		t.Error("Doc reaches Para")
	}
}

func TestOnlyPathIsEdge(t *testing.T) {
	g := bibtexRIG()
	// (Authors, Name) is the only Authors→Name path.
	if !g.OnlyPathIsEdge("Authors", "Name") {
		t.Error("Authors->Name should be the only path")
	}
	// (Reference, Authors): also only path.
	if !g.OnlyPathIsEdge("Reference", "Authors") {
		t.Error("Reference->Authors should be the only path")
	}
	// No edge Reference→Name at all.
	if g.OnlyPathIsEdge("Reference", "Name") {
		t.Error("Reference->Name has no edge")
	}
	// Add a second route Reference→X→Authors: edge no longer unique.
	g2 := bibtexRIG()
	g2.AddEdge("Reference", "X")
	g2.AddEdge("X", "Authors")
	if g2.OnlyPathIsEdge("Reference", "Authors") {
		t.Error("second route must defeat uniqueness")
	}
	// A cycle at the target defeats uniqueness too.
	g3 := bibtexRIG()
	g3.AddEdge("Name", "Name")
	if g3.OnlyPathIsEdge("Authors", "Name") {
		t.Error("self-loop at Name extends the path")
	}
}

func TestAllPathsStartWithEdge(t *testing.T) {
	g := bibtexRIG()
	g.AddEdge("Name", "Name") // self-nesting
	// Every Authors→Name path starts with the edge (then may cycle at Name).
	if !g.AllPathsStartWithEdge("Authors", "Name") {
		t.Error("Authors->Name: all paths start with the edge")
	}
	if g.OnlyPathIsEdge("Authors", "Name") {
		t.Error("...but the edge is not the only path")
	}
	// With a bypass the condition fails.
	g.AddEdge("Authors", "Mid")
	g.AddEdge("Mid", "Name")
	if g.AllPathsStartWithEdge("Authors", "Name") {
		t.Error("bypass must defeat the condition")
	}
	if g.AllPathsStartWithEdge("Reference", "Name") {
		t.Error("no such edge")
	}
}

func TestAllPathsThrough(t *testing.T) {
	g := bibtexRIG()
	// Every Authors→Last_Name path passes through Name.
	if !g.AllPathsThrough("Authors", "Name", "Last_Name") {
		t.Error("Authors→Last_Name via Name")
	}
	// Reference→Last_Name passes through Name too (via Authors or Editors)...
	if !g.AllPathsThrough("Reference", "Name", "Last_Name") {
		t.Error("Reference→Last_Name via Name")
	}
	// ...but not always through Authors (Editors route exists): the paper's
	// reason why Reference ⊃ Authors ⊃ Last_Name cannot be shortened.
	if g.AllPathsThrough("Reference", "Authors", "Last_Name") {
		t.Error("Editors route avoids Authors")
	}
	// via must occur as an interior node: a bare edge defeats it even when
	// via equals an endpoint name (self-nested regions).
	if g.AllPathsThrough("Name", "Name", "Last_Name") {
		t.Error("Name→Last_Name edge has no interior Name")
	}
	if g.AllPathsThrough("Authors", "Last_Name", "Last_Name") {
		t.Error("Authors→Name→Last_Name has no interior Last_Name")
	}
	// Direct edge bypasses via.
	g.AddEdge("Authors", "Last_Name")
	if g.AllPathsThrough("Authors", "Name", "Last_Name") {
		t.Error("direct edge avoids Name")
	}
	// via not a node: holds only when no path exists.
	g2 := New()
	g2.AddEdge("A", "B")
	if g2.AllPathsThrough("A", "Zed", "B") {
		t.Error("path exists avoiding nonexistent node")
	}
	if !g2.AllPathsThrough("B", "Zed", "A") {
		t.Error("no path at all: vacuously true")
	}
}

func TestIsPath(t *testing.T) {
	g := bibtexRIG()
	if !g.IsPath("Reference", "Authors", "Name", "Last_Name") {
		t.Error("query path should match")
	}
	if g.IsPath("Reference", "Title", "Last_Name") {
		t.Error("Title has no Last_Name edge")
	}
	if g.IsPath() {
		t.Error("empty path")
	}
	if !g.IsPath("Reference") {
		t.Error("single node path")
	}
	if g.IsPath("Nope") {
		t.Error("unknown node")
	}
}

func TestProject(t *testing.T) {
	g := bibtexRIG()
	// The paper's Section 6.1 example: index {Reference, Key, Last_Name}.
	p := g.Project("Reference", "Key", "Last_Name")
	if len(p.Nodes()) != 3 {
		t.Fatalf("nodes = %v", p.Nodes())
	}
	if !p.HasEdge("Reference", "Key") {
		t.Error("direct edge must survive")
	}
	if !p.HasEdge("Reference", "Last_Name") {
		t.Error("contracted path Reference→Authors→Name→Last_Name must appear")
	}
	if p.HasEdge("Key", "Last_Name") || p.HasEdge("Last_Name", "Reference") {
		t.Errorf("unexpected edges:\n%s", p)
	}
	if p.EdgeCount() != 2 {
		t.Errorf("edges:\n%s", p)
	}
	// Indexed intermediates block contraction: with Authors also indexed,
	// there is no Reference→Last_Name edge that skips it... but the
	// Editors route (unindexed) still realizes one.
	p2 := g.Project("Reference", "Authors", "Last_Name")
	if !p2.HasEdge("Reference", "Last_Name") {
		t.Error("Editors route still contracts to an edge")
	}
	if !p2.HasEdge("Authors", "Last_Name") || !p2.HasEdge("Reference", "Authors") {
		t.Errorf("expected contracted edges:\n%s", p2)
	}
	// Indexing Editors as well removes the skip edge.
	p3 := g.Project("Reference", "Authors", "Editors", "Last_Name")
	if p3.HasEdge("Reference", "Last_Name") {
		t.Error("all routes blocked by indexed intermediates")
	}
	// Projecting onto unknown names ignores them.
	p4 := g.Project("Reference", "Ghost")
	if p4.HasNode("Ghost") || len(p4.Nodes()) != 1 {
		t.Errorf("ghost projection: %v", p4.Nodes())
	}
}

func TestProjectCycle(t *testing.T) {
	g := New()
	g.AddEdge("Doc", "Section")
	g.AddEdge("Section", "Section")
	g.AddEdge("Section", "Para")
	// Dropping Section entirely gives Doc→Para through the cycle.
	p := g.Project("Doc", "Para")
	if !p.HasEdge("Doc", "Para") {
		t.Errorf("cycle traversal: %s", p)
	}
	// Keeping Section keeps the self-loop.
	p2 := g.Project("Doc", "Section")
	if !p2.HasEdge("Section", "Section") || !p2.HasEdge("Doc", "Section") {
		t.Errorf("self loop lost: %s", p2)
	}
}

func idxSet(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestCountRealizingPaths(t *testing.T) {
	g := bibtexRIG()
	// With only {Reference, Key, Last_Name} indexed, the projected edge
	// Reference→Last_Name is realized by TWO paths (Authors and Editors):
	// the paper's canonical superset case.
	idx := idxSet("Reference", "Key", "Last_Name")
	if got := g.CountRealizingPaths("Reference", "Last_Name", idx); got != MultiplePaths {
		t.Errorf("Reference→Last_Name = %v, want MultiplePaths", got)
	}
	// Reference→Key is unique.
	if got := g.CountRealizingPaths("Reference", "Key", idx); got != UniquePath {
		t.Errorf("Reference→Key = %v, want UniquePath", got)
	}
	// With Authors indexed too, Authors→Last_Name is unique (via Name).
	idx2 := idxSet("Reference", "Authors", "Last_Name")
	if got := g.CountRealizingPaths("Authors", "Last_Name", idx2); got != UniquePath {
		t.Errorf("Authors→Last_Name = %v, want UniquePath", got)
	}
	// No path cases.
	if got := g.CountRealizingPaths("Key", "Last_Name", idx); got != NoPath {
		t.Errorf("Key→Last_Name = %v, want NoPath", got)
	}
	if got := g.CountRealizingPaths("Ghost", "Key", idx); got != NoPath {
		t.Errorf("Ghost = %v", got)
	}
	if got := g.CountRealizingPaths("Reference", "Ghost", idx); got != NoPath {
		t.Errorf("to Ghost = %v", got)
	}
}

func TestCountRealizingPathsCycle(t *testing.T) {
	g := New()
	g.AddEdge("Doc", "Section")
	g.AddEdge("Section", "Section")
	g.AddEdge("Section", "Para")
	// Unindexed Section cycle between Doc and Para → infinitely many walks.
	if got := g.CountRealizingPaths("Doc", "Para", idxSet("Doc", "Para")); got != MultiplePaths {
		t.Errorf("cycle = %v, want MultiplePaths", got)
	}
	// Direct edge with indexed intermediate set: Doc→Section unique.
	if got := g.CountRealizingPaths("Doc", "Section", idxSet("Doc", "Section", "Para")); got != UniquePath {
		t.Errorf("Doc→Section = %v, want UniquePath", got)
	}
	// Section→Section: the self-loop is the unique all-indexed path.
	if got := g.CountRealizingPaths("Section", "Section", idxSet("Doc", "Section", "Para")); got != UniquePath {
		t.Errorf("Section→Section = %v, want UniquePath", got)
	}
}

// buildInstance creates a tiny instance with the BIBTEX nesting shape used
// by the Satisfies tests.
func buildInstance(t *testing.T) *index.Instance {
	t.Helper()
	doc := text.NewDocument("d", strings.Repeat("x ", 50))
	in := index.NewInstance(doc)
	def := func(name string, pairs ...int) {
		rs := make([]region.Region, 0, len(pairs)/2)
		for i := 0; i < len(pairs); i += 2 {
			rs = append(rs, region.Region{Start: pairs[i], End: pairs[i+1]})
		}
		in.Define(name, region.FromRegions(rs))
	}
	def("Reference", 0, 100)
	def("Authors", 5, 40)
	def("Editors", 45, 90)
	def("Name", 10, 35, 50, 85)
	def("First_Name", 10, 20, 50, 60)
	def("Last_Name", 25, 35, 70, 85)
	return in
}

func TestSatisfies(t *testing.T) {
	g := bibtexRIG()
	in := buildInstance(t)
	if err := g.Satisfies(in); err != nil {
		t.Fatalf("Satisfies: %v", err)
	}
	// Removing the Editors→Name edge breaks satisfaction: the editor Name
	// region [50,85) is directly included in Editors [45,90).
	g2 := New("Reference", "Key", "Authors", "Title", "Editors", "Name", "First_Name", "Last_Name")
	g2.AddEdge("Reference", "Authors")
	g2.AddEdge("Reference", "Editors")
	g2.AddEdge("Authors", "Name")
	g2.AddEdge("Name", "First_Name")
	g2.AddEdge("Name", "Last_Name")
	err := g2.Satisfies(in)
	if err == nil {
		t.Fatal("Satisfies should fail without Editors→Name")
	}
	if !strings.Contains(err.Error(), "Editors") || !strings.Contains(err.Error(), "Name") {
		t.Errorf("error should name the violation: %v", err)
	}
}

func TestSatisfiesIgnoresIndirect(t *testing.T) {
	// Reference includes Last_Name but never *directly*: no edge needed.
	g := bibtexRIG()
	in := buildInstance(t)
	if g.HasEdge("Reference", "Last_Name") {
		t.Fatal("precondition")
	}
	if err := g.Satisfies(in); err != nil {
		t.Fatalf("indirect inclusion misflagged: %v", err)
	}
}
