package algebra

import (
	"testing"

	"qof/internal/stats"
)

// estimateExprs is a mixed bag of expressions over the fixture instance:
// selects, inclusions (transitive and direct), set operations, nesting
// filters and word-level primitives, including several that are provably
// empty from the statistics.
var estimateExprs = []string{
	`Reference`,
	`word("Chang")`,
	`word("never-occurs")`,
	`Reference > Authors > contains(Last_Name, "Chang")`,
	`Reference > contains(Last_Name, "never-occurs")`,
	`Reference >d Authors >d Name >d contains(Last_Name, "Chang")`,
	`Last_Name < Authors < Reference`,
	`Authors + Editors`,
	`Authors & Editors`,
	`Name - (Name < Editors)`,
	`outermost(Reference + Name)`,
	`innermost(Reference + Name + Last_Name)`,
	`equals(Last_Name, "Chang")`,
	`(Reference > contains(Last_Name, "never-occurs")) & Reference`,
	`Reference & (Authors + Editors)`,
	`prefix("Cor")`,
	`match("Chang")`,
	`near(Authors, Editors, 1)`,
	`near(Authors, Authors - Authors, 5)`,
	`freq(Reference, "Chang", 1)`,
	`freq(Reference, "never-occurs", 2)`,
	`innermost(Reference - Authors)`,
}

// TestEstimateUpperBound checks the soundness contract the evaluator's
// short-circuiting relies on: for every expression whose names are all
// indexed, the estimated cardinality bounds the actual result size, and
// Card == 0 implies the result really is empty.
func TestEstimateUpperBound(t *testing.T) {
	in := fixture(t)
	st := stats.Collect(in)
	for _, src := range estimateExprs {
		e := MustParse(src)
		est := EstimateCost(e, st)
		got, err := NewEvaluator(in).Eval(e)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if got.Len() > est.Card {
			t.Errorf("%s: estimate %d below actual %d — not an upper bound", src, est.Card, got.Len())
		}
		if est.Card == 0 && !got.IsEmpty() {
			t.Errorf("%s: estimated provably empty but evaluated to %v", src, got)
		}
		if est.Cost < 0 {
			t.Errorf("%s: negative cost %f", src, est.Cost)
		}
	}
}

// TestShortCircuit checks that an evaluated-empty operand of ∩/⊃/⊂ skips
// the other side (counted in Stats.ShortCircuits) without changing results.
func TestShortCircuit(t *testing.T) {
	in := fixture(t)
	st := stats.Collect(in)

	for _, src := range []string{
		`(Reference > contains(Last_Name, "never-occurs")) & Reference`,
		`Reference & (Reference > contains(Last_Name, "never-occurs"))`,
		`(Reference > contains(Last_Name, "never-occurs")) > Name`,
		`Last_Name < (Reference > contains(Last_Name, "never-occurs"))`,
	} {
		ev := NewEvaluator(in)
		ev.CostStats = st
		var es Stats
		got, err := ev.EvalStats(MustParse(src), &es)
		if err != nil {
			t.Fatalf("EvalStats(%q): %v", src, err)
		}
		if !got.IsEmpty() {
			t.Errorf("%s: expected empty result, got %v", src, got)
		}
		if es.ShortCircuits == 0 {
			t.Errorf("%s: empty operand did not short-circuit: %+v", src, es)
		}
		// The short-circuit must not change the result: a plain evaluator
		// (no statistics, no skipping disabled paths) agrees.
		want, err := NewEvaluator(in).Eval(MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: short-circuited %v differs from plain %v", src, got, want)
		}
	}

	// Union and the right side of difference must never be skipped: the
	// other operand still contributes to the result.
	for _, src := range []string{
		`(Authors & Editors) + Reference`,
		`Reference - (Authors & Editors)`,
	} {
		ev := NewEvaluator(in)
		ev.CostStats = st
		got, err := ev.Eval(MustParse(src))
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if got.Len() != 2 {
			t.Errorf("%s: expected the 2 references, got %v", src, got)
		}
	}
}

// TestShortCircuitErrorParity pins the error contract differential testing
// relies on: when the skipped operand would have failed (an unindexed
// name), the evaluator must still report the error instead of silently
// returning an empty set.
func TestShortCircuitErrorParity(t *testing.T) {
	in := fixture(t)
	st := stats.Collect(in)
	ev := NewEvaluator(in)
	ev.CostStats = st
	// Left side evaluates empty; right side references an unindexed name.
	_, err := ev.Eval(MustParse(`(Authors & Editors) & Unindexed`))
	if err == nil {
		t.Fatal("expected unindexed-name error, short-circuit swallowed it")
	}
}
