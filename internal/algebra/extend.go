package algebra

// PAT feature extensions beyond the paper's core subset. Section 3 notes
// that PAT "combines traditional text search capabilities (lexical,
// proximity, contextual, boolean) with some original powerful features
// (position and frequency search)"; these operators reproduce the
// proximity and frequency features over the region model:
//
//	near(e1, e2, k)   regions of e1 within k bytes of some region of e2
//	freq(e, "w", n)   regions of e containing at least n occurrences of w
//
// Both are selections on their left/first argument, so they compose with
// the inclusion operators like σ does.

import (
	"fmt"
	"sort"
	"strconv"

	"qof/internal/region"
)

// Near selects the regions of E whose distance to some region of To is at
// most K bytes (0 = touching or overlapping). Distance between regions is
// the gap between their closest endpoints.
type Near struct {
	E  Expr
	To Expr
	K  int
}

// Freq selects the regions of Arg containing at least N whole-word
// occurrences of W.
type Freq struct {
	Arg Expr
	W   string
	N   int
}

func (Near) isExpr() {}
func (Freq) isExpr() {}

func (e Near) String() string {
	return fmt.Sprintf("near(%s, %s, %d)", e.E, e.To, e.K)
}

func (e Freq) String() string {
	return fmt.Sprintf("freq(%s, %s, %d)", e.Arg, strconv.Quote(e.W), e.N)
}

// evalNear computes the proximity selection. Targets are scanned forward
// from the first start position ≥ r.Start and backward with a
// prefix-maximum of end positions bounding how far back a target could
// still reach within k bytes.
func evalNear(E, To region.Set, k int) region.Set {
	if E.IsEmpty() || To.IsEmpty() {
		return region.Empty
	}
	targets := To.Regions()
	// prefMaxEnd[i] = max End among targets[0:i].
	prefMaxEnd := make([]int, len(targets)+1)
	prefMaxEnd[0] = -1 << 62
	for i, t := range targets {
		prefMaxEnd[i+1] = max(prefMaxEnd[i], t.End)
	}
	return E.Filter(func(r region.Region) bool {
		i := sort.Search(len(targets), func(i int) bool { return targets[i].Start >= r.Start })
		for j := i; j < len(targets); j++ {
			if targets[j].Start-r.End > k {
				break // later targets start even further right
			}
			if gap(r, targets[j]) <= k {
				return true
			}
		}
		for j := i - 1; j >= 0; j-- {
			if prefMaxEnd[j+1] < r.Start-k {
				break // no earlier target reaches within k
			}
			if gap(r, targets[j]) <= k {
				return true
			}
		}
		return false
	})
}

// gap returns the byte distance between two regions (0 if they touch or
// overlap).
func gap(a, b region.Region) int {
	switch {
	case b.Start >= a.End:
		return b.Start - a.End
	case a.Start >= b.End:
		return a.Start - b.End
	default:
		return 0
	}
}

// evalFreq counts occurrences of w inside each region.
func (ev *Evaluator) evalFreq(arg region.Set, w string, n int) region.Set {
	occ := ev.in.Words().Occurrences(w)
	if len(occ) < n || n <= 0 {
		if n <= 0 {
			return arg
		}
		return region.Empty
	}
	return arg.Filter(func(r region.Region) bool {
		lo := sort.Search(len(occ), func(i int) bool { return occ[i].Start >= r.Start })
		count := 0
		for i := lo; i < len(occ) && occ[i].End <= r.End; i++ {
			count++
			if count >= n {
				return true
			}
		}
		return false
	})
}
