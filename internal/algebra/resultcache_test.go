package algebra

import (
	"testing"

	"qof/internal/region"
)

// mapCache is a minimal ResultCache for exercising the evaluator's cache
// protocol without the engine's LRU.
type mapCache struct {
	m    map[string]region.Set
	puts int
}

func (c *mapCache) Get(key string) (region.Set, bool) {
	s, ok := c.m[key]
	return s, ok
}

func (c *mapCache) Put(key string, s region.Set) {
	c.m[key] = s
	c.puts++
}

// TestEvaluatorResultCache checks the evaluator side of the cross-query
// result cache: costly expressions are stored and served, cheap leaves are
// not, and CachedResult answers without evaluating.
func TestEvaluatorResultCache(t *testing.T) {
	in := fixture(t)
	ev := NewEvaluator(in)
	cache := &mapCache{m: make(map[string]region.Set)}
	ev.Results = cache

	costly := MustParse(`Reference > Authors > contains(Last_Name, "Chang")`)
	if _, ok := ev.CachedResult(costly); ok {
		t.Fatal("CachedResult hit before any evaluation")
	}
	want, err := ev.Eval(costly)
	if err != nil {
		t.Fatal(err)
	}
	if cache.puts == 0 {
		t.Fatal("costly expression was not stored in the result cache")
	}
	var st Stats
	got, err := ev.EvalStats(costly, &st)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResultCacheHits == 0 {
		t.Errorf("repeat evaluation did not hit the result cache: %+v", st)
	}
	if !got.Equal(want) {
		t.Errorf("cached result %v differs from computed %v", got, want)
	}
	if s, ok := ev.CachedResult(costly); !ok || !s.Equal(want) {
		t.Errorf("CachedResult = %v, %v; want %v, true", s, ok, want)
	}

	// A bare name is below the cost threshold: evaluated, never cached.
	cheap := MustParse(`Reference`)
	before := cache.puts
	if _, err := ev.Eval(cheap); err != nil {
		t.Fatal(err)
	}
	if cache.puts != before {
		t.Error("cheap leaf was stored in the result cache")
	}
	if _, ok := ev.CachedResult(cheap); ok {
		t.Error("CachedResult served a below-threshold expression")
	}

	// Keys embed the instance epoch: a mutation makes the cached entry
	// unreachable even though the map still holds it.
	in.Define("Bump", region.FromRegions([]region.Region{{Start: 0, End: 1}}))
	if _, ok := ev.CachedResult(costly); ok {
		t.Error("CachedResult survived an instance mutation")
	}
}
