package algebra

// Cross-query common-subexpression elimination: a singleflight-style
// in-flight table keyed on the same epoch-prefixed canonical-expression
// keys the cross-query result cache uses. When several concurrent queries
// need the same (cache-worthy) subexpression, exactly one — the leader —
// evaluates it; the rest wait on the flight and receive the finished set.
//
// Cancellation semantics preserve the PR 5/6 invariants:
//
//   - A canceled leader completes its flight with its context error; live
//     waiters treat that as a handoff, re-join, and the first to re-join
//     becomes the new leader. A waiter whose own context dies just leaves.
//   - Killed runs never publish: a flight only completes successfully with
//     a fully evaluated set, and result-cache writes remain deferred
//     pendingPuts flushed only when the whole evaluation succeeds.
//   - A leader that panics completes its flight with errLeaderAborted on
//     unwind, so waiters never hang; they retry exactly as for a cancel.
//
// Deadlock freedom: a leader only ever waits on flights for strict
// subexpressions of the one it leads, and strict subexpressions have
// strictly shorter canonical strings, so wait-for edges are acyclic.

import (
	"context"
	"errors"
	"sync"

	"qof/internal/region"
)

// errLeaderAborted completes a flight whose leader panicked out of its
// evaluation; waiters treat it like leader cancellation and take over.
var errLeaderAborted = errors.New("algebra: in-flight leader aborted")

// Inflight is the per-engine table of subexpression evaluations currently
// in flight. Safe for concurrent use; the zero value is not usable,
// construct with NewInflight.
type Inflight struct {
	mu sync.Mutex
	m  map[string]*Flight // guarded by mu
}

// NewInflight creates an empty in-flight table.
func NewInflight() *Inflight {
	return &Inflight{m: make(map[string]*Flight)}
}

// Flight is one in-flight evaluation. set and err are written exactly once,
// before done is closed; waiters read them only after done, so the channel
// provides the necessary happens-before edge.
type Flight struct {
	done chan struct{}
	set  region.Set
	err  error
}

// Join returns the flight for key, creating it when none is in flight. The
// second result is true for the caller that created it — the leader, which
// must evaluate and Complete the flight — and false for waiters.
func (inf *Inflight) Join(key string) (*Flight, bool) {
	inf.mu.Lock()
	defer inf.mu.Unlock()
	if fl, ok := inf.m[key]; ok {
		return fl, false
	}
	fl := &Flight{done: make(chan struct{})}
	inf.m[key] = fl
	return fl, true
}

// Complete finishes a flight: the key is retired first (so late joiners
// start a fresh flight instead of reading a completed one), then the result
// is published to every waiter. Must be called exactly once per flight, by
// its leader.
func (inf *Inflight) Complete(key string, fl *Flight, s region.Set, err error) {
	inf.mu.Lock()
	if inf.m[key] == fl {
		delete(inf.m, key)
	}
	inf.mu.Unlock()
	fl.set, fl.err = s, err
	close(fl.done)
}

// Abort completes a flight as failed-by-leader (panic unwind, or any exit
// that produced no complete set); waiters treat it like leader cancellation
// and take over.
func (inf *Inflight) Abort(key string, fl *Flight) {
	inf.Complete(key, fl, region.Empty, errLeaderAborted)
}

// Wait blocks until the flight completes or ctx is done, whichever first.
// A nil or never-canceled ctx waits unconditionally.
func (fl *Flight) Wait(ctx context.Context) (region.Set, error) {
	if ctx == nil || ctx.Done() == nil {
		<-fl.done
	} else {
		select {
		case <-fl.done:
		case <-ctx.Done():
			return region.Empty, ctx.Err()
		}
	}
	return fl.set, fl.err
}

// retryableLead reports whether a flight error is specific to the leader
// that produced it — cancellation, deadline expiry, or panic unwind — so a
// live waiter should take over rather than inherit it. Anything else
// (an unindexed name, say) is deterministic and fails every query alike.
func retryableLead(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errLeaderAborted)
}
