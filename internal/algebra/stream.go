package algebra

// Streaming evaluation: Stream compiles an expression into a pull-based
// region.Iterator pipeline instead of materializing every operator result.
// The set operators become sorted merge iterators, the inclusion operators
// window/merge iterators with bounded lookahead, and the leaves stream off
// the index postings, so a consumer that stops early (LIMIT, budget,
// cancellation) pays only for the prefix it reads.
//
// The materializing evaluator (eval.go) is the reference implementation;
// the streaming pipeline is verified against it by the differential harness
// (internal/refeval/diff) and the property tests in stream_test.go.
// Deliberate differences from the materializing path:
//
//   - No CSE memo and no subexpression result-cache reads: duplicated
//     subexpressions are re-evaluated. The engine still serves whole
//     queries from the cross-query cache via CachedResult and publishes
//     fully drained streams with PublishResult.
//   - Budget charging is per region as it flows through each operator — the
//     per-region analogue of materializing's per-result charge. Totals for a
//     full drain are close but not ordered: the memo and the empty-operand
//     short-circuit can make materializing cheaper, while merge iterators
//     that exhaust one operand early make streaming cheaper. A partially
//     consumed stream charges only for the prefix actually pulled.
//   - Stats.Ops/DirectOps count pipeline construction; RegionsTouched
//     counts regions actually emitted; PeakBytes records the high-water
//     mark of buffers the pipeline had to materialize (proximity targets,
//     direct-operator right sides).
//
// A small number of operators have no streaming form, because they need a
// whole operand to decide membership: Near materializes its target side,
// and the direct operators (⊃d/⊂d) materialize their right side (plus, for
// the layered variant, the left side). Those buffers are metered into
// PeakBytes.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"qof/internal/mpm"
	"qof/internal/region"
)

// openStreams counts the root pipelines Stream has handed out that are not
// yet closed. Leak-accounting tests use OpenStreams to prove every pipeline
// is closed — including the ones a canceled hedge loser abandons mid-drain.
var openStreams atomic.Int64

// OpenStreams reports the number of streaming pipelines currently open
// (built by Stream, not yet Closed).
func OpenStreams() int64 { return openStreams.Load() }

// rootIter wraps a pipeline's root so the live count drops exactly once on
// the first Close. Close is idempotent and pipelines are single-consumer,
// so no synchronization is needed.
type rootIter struct {
	region.Iterator
	closed bool
}

func (r *rootIter) Close() {
	if !r.closed {
		r.closed = true
		openStreams.Add(-1)
	}
	r.Iterator.Close()
}

// regionBytes is the in-memory footprint of one region.Region (two ints),
// the unit PeakBytes accounting uses.
const regionBytes = 16

// streamPollStride is how many Next calls each operator tap lets pass
// between cancellation polls. The region package uses the same stride for
// its materializing sweeps.
const streamPollStride = 1024

// streamCtx is the shared state of one streaming evaluation: cancellation,
// budget, statistics, and the buffered-bytes meter. All iterators of one
// pipeline share a single streamCtx; pipelines are single-consumer, so no
// locking is needed.
type streamCtx struct {
	check  region.Checker
	budget *Budget
	stats  *Stats
	live   int // bytes currently held in materialized buffers

	// scan, when non-nil, is the batch's multi-pattern scan result; Word
	// leaves it covers stream off it instead of probing the index.
	scan *mpm.Result
}

// meter records n regions' worth of freshly materialized buffer and updates
// the peak. Buffers live as long as the pipeline, so live never shrinks.
func (sc *streamCtx) meter(n int) {
	sc.live += n * regionBytes
	if sc.stats != nil && sc.live > sc.stats.PeakBytes {
		sc.stats.PeakBytes = sc.live
	}
}

// Stream compiles e into a streaming iterator pipeline over the evaluator's
// instance. The returned iterator emits the same region sequence the
// materializing Eval would return, in canonical order; cancellation,
// deadline expiry and budget exhaustion surface as errors from Next
// (context errors, or an error wrapping qerr.ErrBudgetExceeded). Unindexed
// region names are reported immediately, before any region flows.
//
// The caller owns the iterator and must Close it — also after errors —
// to release pipeline buffers. Statistics accumulate into st when non-nil.
func (ev *Evaluator) Stream(cctx context.Context, e Expr, st *Stats, b *Budget) (region.Iterator, error) {
	// Name resolution is the only failure mode of building the pipeline;
	// validating up front keeps error behavior aligned with materializing
	// evaluation, which never skips an unindexed name either (safeToSkip
	// blocks short-circuiting over unknown names).
	var nameErr error
	Walk(e, func(x Expr) {
		if n, ok := x.(Name); ok && nameErr == nil && !ev.in.Has(n.Ident) {
			nameErr = fmt.Errorf("algebra: region %q: %w", n.Ident, ErrNotIndexed)
		}
	})
	if nameErr != nil {
		return nil, nameErr
	}
	sc := &streamCtx{budget: b, stats: st, scan: mpm.FromContext(cctx)}
	if cctx != nil && cctx.Done() != nil {
		sc.check = cctx.Err
	}
	it, err := ev.stream(sc, e)
	if err != nil {
		return nil, err
	}
	openStreams.Add(1)
	return &rootIter{Iterator: it}, nil
}

// StreamEval drains a streaming pipeline into a Set: Eval semantics with
// iterator machinery, used by the differential harness to exercise the
// streaming operators under full consumption.
func (ev *Evaluator) StreamEval(cctx context.Context, e Expr, st *Stats, b *Budget) (region.Set, error) {
	it, err := ev.Stream(cctx, e, st, b)
	if err != nil {
		return region.Empty, err
	}
	return region.Materialize(it)
}

// PublishResult offers a fully drained streaming result to the cross-query
// result cache, under the same worthiness gates the materializing path
// applies. The engine calls it only after a complete, successful,
// un-truncated drain — a partial stream must never be published.
func (ev *Evaluator) PublishResult(e Expr, s region.Set) {
	if ev.Results == nil || !ev.cacheWorthy(e) {
		return
	}
	switch e.(type) {
	case Binary, Select, Unary, Near, Freq:
		ev.Results.Put(ev.resultKey(e.String()), s)
	}
}

// countOp records pipeline construction of one operator.
func (sc *streamCtx) countOp(direct bool) {
	if sc.stats == nil {
		return
	}
	sc.stats.Ops++
	if direct {
		sc.stats.DirectOps++
	}
}

// stream builds the iterator for e recursively. Operator nodes are wrapped
// in a tap that polls cancellation, charges the budget per emitted region,
// and accumulates RegionsTouched — the streaming analogue of the charges
// the materializing eval applies per operator result.
func (ev *Evaluator) stream(sc *streamCtx, e Expr) (region.Iterator, error) {
	switch e := e.(type) {
	case Name:
		s, _ := ev.in.Region(e.Ident) // validated in Stream
		return sc.tap(s.Iter(), false), nil
	case Word:
		s, ok := sc.scan.Lookup(e.W)
		if ok {
			if sc.stats != nil {
				sc.stats.SharedScans++
			}
		} else {
			s = ev.in.Words().MatchPoints(e.W)
		}
		sc.meter(s.Len())
		return sc.tap(s.Iter(), false), nil
	case Prefix:
		s := ev.in.Words().PrefixMatchPoints(e.P)
		sc.meter(s.Len())
		return sc.tap(s.Iter(), false), nil
	case Match:
		s := ev.in.Words().SubstringMatchPoints(e.S)
		sc.meter(s.Len())
		return sc.tap(s.Iter(), false), nil
	case Select:
		arg, err := ev.stream(sc, e.Arg)
		if err != nil {
			return nil, err
		}
		sc.countOp(false)
		return sc.tap(ev.streamSelect(sc, arg, e), true), nil
	case Unary:
		arg, err := ev.stream(sc, e.Arg)
		if err != nil {
			return nil, err
		}
		sc.countOp(false)
		if e.Op == OpInnermost {
			return sc.tap(region.InnermostIter(arg), true), nil
		}
		return sc.tap(region.OutermostIter(arg), true), nil
	case Near:
		l, err := ev.stream(sc, e.E)
		if err != nil {
			return nil, err
		}
		// Proximity needs the whole target side: any target anywhere in
		// the document can witness a region of E. Materialize it.
		to, err := ev.streamMaterialize(sc, e.To)
		if err != nil {
			l.Close()
			return nil, err
		}
		sc.countOp(false)
		return sc.tap(streamNear(l, to, e.K), true), nil
	case Freq:
		arg, err := ev.stream(sc, e.Arg)
		if err != nil {
			return nil, err
		}
		sc.countOp(false)
		return sc.tap(ev.streamFreq(arg, e), true), nil
	case Binary:
		l, err := ev.stream(sc, e.L)
		if err != nil {
			return nil, err
		}
		it, err := ev.streamBinary(sc, e, l)
		if err != nil {
			l.Close()
			return nil, err
		}
		sc.countOp(e.Op.IsDirect())
		return sc.tap(it, true), nil
	default:
		return nil, fmt.Errorf("algebra: unknown expression %T", e)
	}
}

func (ev *Evaluator) streamBinary(sc *streamCtx, e Binary, l region.Iterator) (region.Iterator, error) {
	switch e.Op {
	case OpUnion, OpDiff, OpIntersect, OpIncluding, OpIncluded:
		r, err := ev.stream(sc, e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case OpUnion:
			return region.UnionIter(l, r), nil
		case OpDiff:
			return region.DiffIter(l, r), nil
		case OpIntersect:
			return region.IntersectIter(l, r), nil
		case OpIncluding:
			return region.IncludingIter(l, r, sc.check), nil
		default:
			return region.IncludedIter(l, r), nil
		}
	case OpDirIncluding:
		// The direct operators consult the universe forest per region; the
		// right side must be complete before the first answer is known.
		S, err := ev.streamMaterialize(sc, e.R)
		if err != nil {
			return nil, err
		}
		if ev.UseLayeredDirect {
			// The layered program is a whole-set while-loop; run it over
			// materialized operands and stream the result out.
			L, err := region.Materialize(l)
			if err != nil {
				return nil, err
			}
			sc.meter(L.Len())
			out, err := ev.layeredDirectlyIncluding(sc.check, L, S)
			if err != nil {
				return nil, err
			}
			sc.meter(out.Len())
			return out.Iter(), nil
		}
		u := ev.in.Universe()
		var cand []region.Region
		for i, s := range S.Regions() {
			if sc.check != nil && i%streamPollStride == 0 {
				if err := sc.check(); err != nil {
					return nil, err
				}
			}
			cand = append(cand, u.DirectContainers(s)...)
		}
		candSet := region.FromRegions(cand)
		sc.meter(candSet.Len())
		return region.IntersectIter(l, candSet.Iter()), nil
	case OpDirIncluded:
		S, err := ev.streamMaterialize(sc, e.R)
		if err != nil {
			return nil, err
		}
		u := ev.in.Universe()
		return region.FilterIter(l, func(r region.Region) bool {
			for _, t := range u.DirectContainers(r) {
				if S.Contains(t) {
					return true
				}
			}
			return false
		}), nil
	default:
		return nil, fmt.Errorf("algebra: unknown operator %v", e.Op)
	}
}

// streamMaterialize evaluates a subexpression to a full Set through its own
// streaming pipeline (so budget, polling and stats still apply) and meters
// the buffer.
func (ev *Evaluator) streamMaterialize(sc *streamCtx, e Expr) (region.Set, error) {
	it, err := ev.stream(sc, e)
	if err != nil {
		return region.Empty, err
	}
	s, err := region.Materialize(it)
	if err != nil {
		return region.Empty, err
	}
	sc.meter(s.Len())
	return s, nil
}

// streamSelect applies σ as a filter over the streaming argument using the
// same per-region predicates the WordIndex kernels use, so the two
// executors agree region for region.
func (ev *Evaluator) streamSelect(sc *streamCtx, arg region.Iterator, e Select) region.Iterator {
	words := ev.in.Words()
	switch e.Mode {
	case SelContains:
		if pts, ok := sc.scan.Lookup(e.W); ok {
			// The batch scan already produced w's whole-word occurrences;
			// the filter below is the same one the postings path applies.
			if sc.stats != nil {
				sc.stats.SharedScans++
			}
			occ := pts.Regions()
			if len(occ) == 0 {
				arg.Close()
				return region.Empty.Iter()
			}
			return region.FilterIter(arg, func(r region.Region) bool {
				i := sort.Search(len(occ), func(i int) bool { return occ[i].Start >= r.Start })
				return i < len(occ) && occ[i].End <= r.End
			})
		}
		occ := words.Occurrences(e.W)
		if len(occ) == 0 {
			arg.Close()
			return region.Empty.Iter()
		}
		return region.FilterIter(arg, func(r region.Region) bool {
			i := sort.Search(len(occ), func(i int) bool { return occ[i].Start >= r.Start })
			return i < len(occ) && occ[i].End <= r.End
		})
	case SelEquals:
		content := words.Document().Content()
		return region.FilterIter(arg, func(r region.Region) bool {
			return content[r.Start:r.End] == e.W
		})
	default:
		content := words.Document().Content()
		return region.FilterIter(arg, func(r region.Region) bool {
			return strings.HasPrefix(content[r.Start:r.End], e.W)
		})
	}
}

// streamFreq applies the frequency selection as a filter, mirroring
// evalFreq's counting sweep per region.
func (ev *Evaluator) streamFreq(arg region.Iterator, e Freq) region.Iterator {
	if e.N <= 0 {
		return arg
	}
	occ := ev.in.Words().Occurrences(e.W)
	if len(occ) < e.N {
		arg.Close()
		return region.Empty.Iter()
	}
	return region.FilterIter(arg, func(r region.Region) bool {
		lo := sort.Search(len(occ), func(i int) bool { return occ[i].Start >= r.Start })
		count := 0
		for i := lo; i < len(occ) && occ[i].End <= r.End; i++ {
			count++
			if count >= e.N {
				return true
			}
		}
		return false
	})
}

// streamNear applies the proximity selection as a filter over the streaming
// left side against materialized targets, with evalNear's two-directional
// scan per region.
func streamNear(l region.Iterator, to region.Set, k int) region.Iterator {
	if to.IsEmpty() {
		l.Close()
		return region.Empty.Iter()
	}
	targets := to.Regions()
	prefMaxEnd := make([]int, len(targets)+1)
	prefMaxEnd[0] = -1 << 62
	for i, t := range targets {
		prefMaxEnd[i+1] = max(prefMaxEnd[i], t.End)
	}
	return region.FilterIter(l, func(r region.Region) bool {
		i := sort.Search(len(targets), func(i int) bool { return targets[i].Start >= r.Start })
		for j := i; j < len(targets); j++ {
			if targets[j].Start-r.End > k {
				break
			}
			if gap(r, targets[j]) <= k {
				return true
			}
		}
		for j := i - 1; j >= 0; j-- {
			if prefMaxEnd[j+1] < r.Start-k {
				break
			}
			if gap(r, targets[j]) <= k {
				return true
			}
		}
		return false
	})
}

// tap wraps an iterator with the pipeline's cross-cutting concerns:
// cancellation polling every streamPollStride emissions, per-region budget
// charging, and RegionsTouched accounting (operator taps only, matching the
// materializing count() which skips leaves).
func (sc *streamCtx) tap(it region.Iterator, countRegions bool) region.Iterator {
	return &tapIter{it: it, sc: sc, countRegions: countRegions}
}

type tapIter struct {
	it           region.Iterator
	sc           *streamCtx
	countRegions bool
	n            int
	done         bool
	err          error
}

func (t *tapIter) Next() (region.Region, bool, error) {
	if t.done {
		return region.Region{}, false, t.err
	}
	if t.sc.check != nil && t.n%streamPollStride == 0 {
		if err := t.sc.check(); err != nil {
			t.done, t.err = true, err
			return region.Region{}, false, err
		}
	}
	t.n++
	r, ok, err := t.it.Next()
	if err != nil || !ok {
		t.done, t.err = true, err
		return region.Region{}, false, err
	}
	// Every region flowing out of every operator charges the budget, the
	// streaming counterpart of materializing's per-result cardinality
	// charge: a full drain charges exactly the same total.
	if err := t.sc.budget.charge(1); err != nil {
		t.done, t.err = true, err
		return region.Region{}, false, err
	}
	if t.countRegions && t.sc.stats != nil {
		t.sc.stats.RegionsTouched++
	}
	return r, true, nil
}

func (t *tapIter) Close() {
	t.done = true
	t.it.Close()
}
