package algebra

import (
	"fmt"
	"strconv"
	"unicode"
)

// Parse parses the textual region-algebra syntax documented in the package
// comment into an expression tree.
func Parse(src string) (Expr, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok)
	}
	return e, nil
}

// MustParse is Parse, panicking on error; for tests and fixed expressions.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokOp     // + - & > < >d <d
	tokLParen // (
	tokRParen // )
	tokComma  // ,
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return strconv.Quote(t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) lex() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '+' || c == '-' || c == '&':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	case c == '>' || c == '<':
		l.pos++
		// ">d" / "<d" only when the d is not the start of an identifier.
		if l.pos < len(l.src) && l.src[l.pos] == 'd' &&
			(l.pos+1 >= len(l.src) || !isIdentChar(l.src[l.pos+1])) {
			l.pos++
			return token{kind: tokOp, text: string(c) + "d", pos: start}, nil
		}
		return token{kind: tokOp, text: string(c), pos: start}, nil
	case c == '"':
		// Find the closing quote honoring escapes, then decode with the
		// Go string-literal rules — the inverse of the strconv.Quote used
		// by String(), so rendering round-trips.
		j := l.pos + 1
		for j < len(l.src) && l.src[j] != '"' {
			if l.src[j] == '\\' && j+1 < len(l.src) {
				j++
			}
			j++
		}
		if j >= len(l.src) {
			return token{}, fmt.Errorf("algebra: unterminated string at offset %d", start)
		}
		text, err := strconv.Unquote(l.src[l.pos : j+1])
		if err != nil {
			return token{}, fmt.Errorf("algebra: bad string at offset %d: %v", start, err)
		}
		l.pos = j + 1
		return token{kind: tokString, text: text, pos: start}, nil
	case isIdentStart(c) || isDigit(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, fmt.Errorf("algebra: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) next() error {
	t, err := p.lex.lex()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("algebra: offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

// parseExpr handles + and - (lowest precedence, left associative).
func (p *parser) parseExpr() (Expr, error) {
	e, err := p.parseInclusion()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := OpUnion
		if p.tok.text == "-" {
			op = OpDiff
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseInclusion()
		if err != nil {
			return nil, err
		}
		e = Binary{Op: op, L: e, R: r}
	}
	return e, nil
}

// parseInclusion handles >, >d, <, <d (right associative, per the paper).
func (p *parser) parseInclusion() (Expr, error) {
	l, err := p.parseIntersect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokOp {
		return l, nil
	}
	var op BinOp
	switch p.tok.text {
	case ">":
		op = OpIncluding
	case "<":
		op = OpIncluded
	case ">d":
		op = OpDirIncluding
	case "<d":
		op = OpDirIncluded
	default:
		return l, nil
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	r, err := p.parseInclusion()
	if err != nil {
		return nil, err
	}
	return Binary{Op: op, L: l, R: r}, nil
}

// parseIntersect handles & (left associative).
func (p *parser) parseIntersect() (Expr, error) {
	e, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&" {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		e = Binary{Op: OpIntersect, L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseTerm() (Expr, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ), got %s", p.tok)
		}
		return e, p.next()
	case tokIdent:
		ident := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return Name{Ident: ident}, nil
		}
		return p.parseCall(ident)
	default:
		return nil, p.errorf("expected region name, function or (, got %s", p.tok)
	}
}

// parseCall parses fn(...) for the built-in functions.
func (p *parser) parseCall(fn string) (Expr, error) {
	if err := p.next(); err != nil { // consume (
		return nil, err
	}
	switch fn {
	case "word", "prefix", "match":
		if p.tok.kind != tokString {
			return nil, p.errorf("%s() expects a string argument", fn)
		}
		w := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		switch fn {
		case "word":
			return Word{W: w}, nil
		case "prefix":
			return Prefix{P: w}, nil
		default:
			return Match{S: w}, nil
		}
	case "innermost", "outermost":
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		op := OpInnermost
		if fn == "outermost" {
			op = OpOutermost
		}
		return Unary{Op: op, Arg: arg}, nil
	case "contains", "equals", "starts":
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokComma); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errorf("%s() expects a string as second argument", fn)
		}
		w := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		mode := SelContains
		switch fn {
		case "equals":
			mode = SelEquals
		case "starts":
			mode = SelPrefix
		}
		return Select{Mode: mode, W: w, Arg: arg}, nil
	case "near":
		e1, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokComma); err != nil {
			return nil, err
		}
		e2, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokComma); err != nil {
			return nil, err
		}
		k, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return Near{E: e1, To: e2, K: k}, nil
	case "freq":
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokComma); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errorf("freq() expects a string as second argument")
		}
		w := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(tokComma); err != nil {
			return nil, err
		}
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return Freq{Arg: arg, W: w, N: n}, nil
	default:
		return nil, p.errorf("unknown function %q", fn)
	}
}

// number parses a non-negative integer literal token.
func (p *parser) number() (int, error) {
	t := p.tok
	if t.kind != tokIdent {
		return 0, p.errorf("expected a number, got %s", t)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errorf("expected a non-negative number, got %q", t.text)
	}
	return n, p.next()
}

func (p *parser) expect(k tokKind) error {
	if p.tok.kind != k {
		return p.errorf("unexpected %s", p.tok)
	}
	return p.next()
}
