package algebra

import (
	"context"
	"errors"
	"testing"

	"qof/internal/qerr"
	"qof/internal/region"
)

// recordingCache records every Put so tests can assert what an evaluation
// published to the cross-query cache.
type recordingCache struct {
	puts map[string]region.Set
}

func (c *recordingCache) Get(key string) (region.Set, bool) {
	s, ok := c.puts[key]
	return s, ok
}

func (c *recordingCache) Put(key string, s region.Set) {
	if c.puts == nil {
		c.puts = make(map[string]region.Set)
	}
	c.puts[key] = s
}

const changChain = `Reference > Authors > contains(Last_Name, "Chang")`

func TestEvalContextCanceled(t *testing.T) {
	in := fixture(t)
	ev := NewEvaluator(in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var st Stats
	_, err := ev.EvalContext(ctx, MustParse(changChain), &st, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalContext on canceled ctx: %v, want context.Canceled", err)
	}
	// The evaluator stays usable after the abort.
	got, err := ev.EvalContext(context.Background(), MustParse(changChain), &st, nil)
	if err != nil {
		t.Fatalf("eval after cancel: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("eval after cancel: %d results, want 1", got.Len())
	}
}

func TestEvalContextBackgroundMatchesEval(t *testing.T) {
	in := fixture(t)
	want := evalStr(t, in, changChain)
	var st Stats
	got, err := NewEvaluator(in).EvalContext(context.Background(), MustParse(changChain), &st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("EvalContext = %v, Eval = %v", got, want)
	}
}

func TestBudgetExceeded(t *testing.T) {
	in := fixture(t)
	ev := NewEvaluator(in)
	var st Stats
	// The chain touches several sets of 2-4 regions each; one region of
	// cumulative allowance cannot cover it.
	_, err := ev.EvalContext(context.Background(), MustParse(changChain), &st, NewBudget(1))
	if !errors.Is(err, qerr.ErrBudgetExceeded) {
		t.Fatalf("tiny budget: %v, want ErrBudgetExceeded", err)
	}
	// A generous budget does not interfere.
	got, err := ev.EvalContext(context.Background(), MustParse(changChain), &st, NewBudget(1_000_000))
	if err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	if got.Len() != 1 {
		t.Fatalf("generous budget: %d results, want 1", got.Len())
	}
}

func TestBudgetIsDeterministic(t *testing.T) {
	in := fixture(t)
	// Find the exact allowance the chain needs: below it the query fails,
	// at it the query succeeds — on every run.
	need := -1
	for n := 1; n < 200; n++ {
		var st Stats
		_, err := NewEvaluator(in).EvalContext(context.Background(), MustParse(changChain), &st, NewBudget(n))
		if err == nil {
			need = n
			break
		}
		if !errors.Is(err, qerr.ErrBudgetExceeded) {
			t.Fatalf("budget %d: unexpected error %v", n, err)
		}
	}
	if need <= 1 {
		t.Fatalf("could not find the budget threshold (need=%d)", need)
	}
	for i := 0; i < 3; i++ {
		var st Stats
		if _, err := NewEvaluator(in).EvalContext(context.Background(), MustParse(changChain), &st, NewBudget(need)); err != nil {
			t.Fatalf("budget %d run %d: %v", need, i, err)
		}
		if _, err := NewEvaluator(in).EvalContext(context.Background(), MustParse(changChain), &st, NewBudget(need-1)); !errors.Is(err, qerr.ErrBudgetExceeded) {
			t.Fatalf("budget %d run %d: %v, want ErrBudgetExceeded", need-1, i, err)
		}
	}
}

func TestNewBudgetUnlimited(t *testing.T) {
	if NewBudget(0) != nil || NewBudget(-5) != nil {
		t.Fatal("non-positive budgets must be nil (unlimited)")
	}
	var b *Budget
	if err := b.charge(1 << 30); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}
}

// TestFailedEvalPublishesNothing is the cache-safety invariant: an
// evaluation killed by cancellation or a budget must not leave any of its
// subexpression results in the cross-query cache, even those computed
// before the abort.
func TestFailedEvalPublishesNothing(t *testing.T) {
	in := fixture(t)
	for name, run := range map[string]func(ev *Evaluator) error{
		"canceled": func(ev *Evaluator) error {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			var st Stats
			_, err := ev.EvalContext(ctx, MustParse(changChain), &st, nil)
			return err
		},
		"budget": func(ev *Evaluator) error {
			var st Stats
			_, err := ev.EvalContext(context.Background(), MustParse(changChain), &st, NewBudget(1))
			return err
		},
	} {
		cache := &recordingCache{}
		ev := NewEvaluator(in)
		ev.Results = cache
		if err := run(ev); err == nil {
			t.Fatalf("%s: evaluation unexpectedly succeeded", name)
		}
		if len(cache.puts) != 0 {
			t.Fatalf("%s: failed evaluation published %d cache entries", name, len(cache.puts))
		}
		// The same evaluator then succeeds and only then publishes.
		var st Stats
		if _, err := ev.EvalContext(context.Background(), MustParse(changChain), &st, nil); err != nil {
			t.Fatalf("%s: eval after failure: %v", name, err)
		}
		if len(cache.puts) == 0 {
			t.Fatalf("%s: successful evaluation published nothing", name)
		}
	}
}

// TestRegionCtlAborts drives the Ctl kernel variants through the evaluator
// with a checker that trips after a fixed number of polls, proving the
// abort path of each kernel returns the checker's error.
func TestCheckerErrorPropagates(t *testing.T) {
	in := fixture(t)
	ev := NewEvaluator(in)
	boom := errors.New("boom")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(boom)
	var st Stats
	_, err := ev.EvalContext(ctx, MustParse(changChain), &st, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(context.Cause(ctx), boom) {
		t.Fatalf("cause = %v, want boom", context.Cause(ctx))
	}
}
