package algebra

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/text"
)

// fixture builds a small two-reference instance shaped like the paper's
// BIBTEX example: Reference ⊃ Authors|Editors ⊃ Name ⊃ First/Last_Name.
//
// Layout (one line per reference):
//
//	[ AUTHOR Verena Chang EDITOR Alan Corliss ]
//	[ AUTHOR Gaston Corliss EDITOR Yf Chang ]
func fixture(t testing.TB) *index.Instance {
	t.Helper()
	content := "[ AUTHOR Verena Chang EDITOR Alan Corliss ]\n" +
		"[ AUTHOR Gaston Corliss EDITOR Yf Chang ]\n"
	doc := text.NewDocument("fixture.bib", content)
	in := index.NewInstance(doc)

	var refs, authors, editors, names, firsts, lasts []region.Region
	lineStart := 0
	for _, line := range strings.SplitAfter(content, "\n") {
		if !strings.HasPrefix(line, "[") {
			continue
		}
		end := lineStart + strings.IndexByte(line, ']') + 1
		refs = append(refs, region.Region{Start: lineStart, End: end})
		aStart := lineStart + strings.Index(line, "AUTHOR")
		eStart := lineStart + strings.Index(line, "EDITOR")
		authors = append(authors, region.Region{Start: aStart, End: eStart - 1})
		editors = append(editors, region.Region{Start: eStart, End: end - 2})

		addName := func(kwStart, kwLen, limit int) {
			nStart := kwStart + kwLen + 1
			names = append(names, region.Region{Start: nStart, End: limit})
			sp := nStart + strings.IndexByte(content[nStart:limit], ' ')
			firsts = append(firsts, region.Region{Start: nStart, End: sp})
			lasts = append(lasts, region.Region{Start: sp + 1, End: limit})
		}
		addName(aStart, len("AUTHOR"), eStart-1)
		addName(eStart, len("EDITOR"), end-2)
		lineStart += len(line)
	}
	in.Define("Reference", region.FromRegions(refs))
	in.Define("Authors", region.FromRegions(authors))
	in.Define("Editors", region.FromRegions(editors))
	in.Define("Name", region.FromRegions(names))
	in.Define("First_Name", region.FromRegions(firsts))
	in.Define("Last_Name", region.FromRegions(lasts))
	if !in.Universe().ProperlyNested() {
		t.Fatal("fixture instance is not properly nested")
	}
	return in
}

func evalStr(t *testing.T, in *index.Instance, src string) region.Set {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	got, err := NewEvaluator(in).Eval(e)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return got
}

func TestPaperChangQuery(t *testing.T) {
	in := fixture(t)
	// The paper's running query: references where Chang is an author.
	// Only the first reference qualifies (in the second, Chang edits).
	got := evalStr(t, in, `Reference > Authors > contains(Last_Name, "Chang")`)
	if got.Len() != 1 || got.At(0).Start != 0 {
		t.Fatalf("Chang-as-author = %v, want first reference only", got)
	}
	// The unoptimized ⊃d form gives the same answer (Prop 3.5 soundness).
	direct := evalStr(t, in, `Reference >d Authors >d Name >d contains(Last_Name, "Chang")`)
	if !direct.Equal(got) {
		t.Fatalf("direct chain = %v, want %v", direct, got)
	}
	// Without the Authors filter, both references qualify.
	both := evalStr(t, in, `Reference > contains(Last_Name, "Chang")`)
	if both.Len() != 2 {
		t.Fatalf("Chang-anywhere = %v, want both references", both)
	}
}

func TestPaperUnionExample(t *testing.T) {
	in := fixture(t)
	// (Reference ⊃ Authors ⊃ σChang(Last_Name)) ∪ (Reference ⊃ Editors ⊃ σCorliss(Last_Name))
	got := evalStr(t, in,
		`(Reference > Authors > contains(Last_Name, "Chang")) + (Reference > Editors > contains(Last_Name, "Corliss"))`)
	if got.Len() != 1 || got.At(0).Start != 0 {
		t.Fatalf("union query = %v", got)
	}
}

func TestProjectionChain(t *testing.T) {
	in := fixture(t)
	// Last names of authors: Last_Name ⊂ Authors ⊂ Reference.
	got := evalStr(t, in, `Last_Name < Authors < Reference`)
	if got.Len() != 2 {
		t.Fatalf("author last names = %v", got)
	}
	doc := in.Document()
	var texts []string
	for _, r := range got.Regions() {
		texts = append(texts, doc.Slice(r.Start, r.End))
	}
	if texts[0] != "Chang" || texts[1] != "Corliss" {
		t.Fatalf("texts = %v", texts)
	}
	// Direct-chain version agrees.
	direct := evalStr(t, in, `Last_Name <d Name <d Authors <d Reference`)
	if !direct.Equal(got) {
		t.Fatalf("direct projection = %v, want %v", direct, got)
	}
}

func TestSetAndNestOps(t *testing.T) {
	in := fixture(t)
	if got := evalStr(t, in, `Authors + Editors`); got.Len() != 4 {
		t.Errorf("union = %v", got)
	}
	if got := evalStr(t, in, `Authors & Editors`); !got.IsEmpty() {
		t.Errorf("intersect = %v", got)
	}
	if got := evalStr(t, in, `Name - (Name < Editors)`); got.Len() != 2 {
		t.Errorf("author names via diff = %v", got)
	}
	if got := evalStr(t, in, `outermost(Reference + Name)`); got.Len() != 2 {
		t.Errorf("outermost = %v", got)
	}
	if got := evalStr(t, in, `innermost(Reference + Name + Last_Name)`); got.Len() != 4 {
		t.Errorf("innermost = %v", got)
	}
	if got := evalStr(t, in, `word("Chang")`); got.Len() != 2 {
		t.Errorf("word = %v", got)
	}
	if got := evalStr(t, in, `prefix("Cor")`); got.Len() != 2 {
		t.Errorf("prefix = %v", got)
	}
	if got := evalStr(t, in, `equals(Last_Name, "Chang")`); got.Len() != 2 {
		t.Errorf("equals = %v", got)
	}
}

func TestEvalNotIndexed(t *testing.T) {
	in := fixture(t)
	in.Drop("Name")
	_, err := NewEvaluator(in).Eval(MustParse(`Reference > Name`))
	if !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("err = %v, want ErrNotIndexed", err)
	}
}

func TestEvalStats(t *testing.T) {
	in := fixture(t)
	ev := NewEvaluator(in)
	ev.Stats = &Stats{}
	if _, err := ev.Eval(MustParse(`Reference >d Authors > contains(Last_Name, "Chang")`)); err != nil {
		t.Fatal(err)
	}
	if ev.Stats.Ops != 3 || ev.Stats.DirectOps != 1 {
		t.Errorf("stats = %+v", ev.Stats)
	}
	if ev.Stats.RegionsTouched == 0 {
		t.Error("RegionsTouched = 0")
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	exprs := []string{
		`Reference`,
		`Reference > Authors`,
		`Reference >d Authors >d Name >d contains(Last_Name, "Chang")`,
		`Last_Name <d Name <d Authors <d Reference`,
		`(A + B) - C & D`,
		`A + (B - C)`,
		`(A > B) > C`,
		`A > B > C`,
		`innermost(outermost(A + B))`,
		`word("Chang") + prefix("Cor")`,
		`equals(Last_Name, "Chang")`,
		`contains(A & B, "w")`,
	}
	for _, src := range exprs {
		e1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := e1.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (printed %q): %v", src, printed, err)
			continue
		}
		if !Equal(e1, e2) {
			t.Errorf("round trip %q -> %q changed the tree", src, printed)
		}
	}
}

func TestParseRightAssociativity(t *testing.T) {
	// A > B > C must parse as A > (B > C) per the paper.
	e := MustParse(`A > B > C`)
	b, ok := e.(Binary)
	if !ok || b.Op != OpIncluding {
		t.Fatalf("parse shape: %v", e)
	}
	if _, ok := b.L.(Name); !ok {
		t.Fatalf("left of > is %T, want Name", b.L)
	}
	if inner, ok := b.R.(Binary); !ok || inner.Op != OpIncluding {
		t.Fatalf("right of > is %v, want B > C", b.R)
	}
	// (A > B) > C keeps the explicit grouping.
	e2 := MustParse(`(A > B) > C`)
	b2 := e2.(Binary)
	if _, ok := b2.L.(Binary); !ok {
		t.Fatalf("(A > B) > C mis-parsed: %v", e2)
	}
	if Equal(e, e2) {
		t.Fatal("grouping lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`>`,
		`A >`,
		`A + `,
		`(A`,
		`A)`,
		`word(`,
		`word(A)`,
		`contains(A)`,
		`contains(A, B)`,
		`unknownfn(A)`,
		`"unterminated`,
		`A ? B`,
		`A B`,
		`innermost(A`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseOpLexing(t *testing.T) {
	// ">d" only lexes as direct inclusion when not starting an identifier.
	e := MustParse(`A >d B`)
	if b := e.(Binary); b.Op != OpDirIncluding {
		t.Fatalf("A >d B op = %v", b.Op)
	}
	e2 := MustParse(`A > dB`)
	b2 := e2.(Binary)
	if b2.Op != OpIncluding {
		t.Fatalf("A > dB op = %v", b2.Op)
	}
	if n, ok := b2.R.(Name); !ok || n.Ident != "dB" {
		t.Fatalf("A > dB right = %v", b2.R)
	}
	if b3 := MustParse(`A <d B`).(Binary); b3.Op != OpDirIncluded {
		t.Fatalf("A <d B op = %v", b3.Op)
	}
}

func TestChainBuilders(t *testing.T) {
	e := Chain([]string{"Reference", "Authors", "Last_Name"},
		[]BinOp{OpIncluding, OpIncluding}, "Chang")
	want := MustParse(`Reference > Authors > contains(Last_Name, "Chang")`)
	if !Equal(e, want) {
		t.Errorf("Chain = %v, want %v", e, want)
	}
	u := UniformChain(OpDirIncluding, "", "A", "B", "C")
	if !Equal(u, MustParse(`A >d B >d C`)) {
		t.Errorf("UniformChain = %v", u)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Chain with mismatched ops must panic")
			}
		}()
		Chain([]string{"A"}, []BinOp{OpIncluding}, "")
	}()
}

func TestNamesAndWalk(t *testing.T) {
	e := MustParse(`Reference > Authors > contains(Last_Name, "Chang") + Reference`)
	names := Names(e)
	if len(names) != 3 || names[0] != "Reference" || names[1] != "Authors" || names[2] != "Last_Name" {
		t.Errorf("Names = %v", names)
	}
}

// TestCostAtLeast checks the early-exit threshold walk against the full
// Cost walk at every threshold around each expression's true cost.
func TestCostAtLeast(t *testing.T) {
	exprs := []string{
		`Reference`,
		`contains(Reference, "Chang")`,
		`Reference > Authors > contains(Last_Name, "Chang")`,
		`Reference >d Authors >d Name >d contains(Last_Name, "Chang")`,
		`Reference > Authors + Reference > Editors - contains(Reference, "Chang")`,
		`near(Reference > Authors, Editors, 5)`,
		`freq(Reference, "Chang", 2)`,
	}
	for _, src := range exprs {
		e := MustParse(src)
		full := Cost(e)
		for min := 0; min <= full+3; min++ {
			if got, want := CostAtLeast(e, min), full >= min; got != want {
				t.Errorf("CostAtLeast(%s, %d) = %v, want %v (Cost=%d)", src, min, got, want, full)
			}
		}
	}
}

func TestCostModel(t *testing.T) {
	cheap := MustParse(`Reference > Authors > contains(Last_Name, "Chang")`)
	costly := MustParse(`Reference >d Authors >d Name >d contains(Last_Name, "Chang")`)
	if Cost(cheap) >= Cost(costly) {
		t.Errorf("Cost(optimized)=%d must be < Cost(original)=%d", Cost(cheap), Cost(costly))
	}
	// Shorter chains are cheaper.
	shorter := MustParse(`Reference > contains(Last_Name, "Chang")`)
	if Cost(shorter) >= Cost(cheap) {
		t.Errorf("Cost(shorter)=%d must be < Cost(longer)=%d", Cost(shorter), Cost(cheap))
	}
	c := CountOps(costly)
	if c.Directs != 3 || c.Selects != 1 || c.Inclusions != 0 {
		t.Errorf("CountOps = %+v", c)
	}
}

func TestPretty(t *testing.T) {
	e := MustParse(`Reference >d Authors > contains(Last_Name, "Chang")`)
	got := Pretty(e)
	for _, want := range []string{"⊃d", "⊃", `σ"Chang"`} {
		if !strings.Contains(got, want) {
			t.Errorf("Pretty = %q, missing %q", got, want)
		}
	}
	if Pretty(MustParse(`innermost(A) + outermost(B)`)) != "ι(A) ∪ ω(B)" {
		t.Errorf("Pretty nest = %q", Pretty(MustParse(`innermost(A) + outermost(B)`)))
	}
}

func TestLayeredDirectMatchesUniverse(t *testing.T) {
	in := fixture(t)
	exprs := []string{
		`Reference >d Authors`,
		`Reference >d Name`,
		`Authors >d Name`,
		`Authors >d Last_Name`,
		`Reference >d Authors >d Name >d contains(Last_Name, "Chang")`,
	}
	for _, src := range exprs {
		e := MustParse(src)
		std := NewEvaluator(in)
		lay := NewEvaluator(in)
		lay.UseLayeredDirect = true
		a, err := std.Eval(e)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lay.Eval(e)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: universe=%v layered=%v", src, a, b)
		}
	}
}

func TestLayeredDirectMatchesNaiveRandomNested(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		in, setNames := randomNestedInstance(rng)
		u := in.Universe()
		for i := 0; i < 3; i++ {
			rn := setNames[rng.Intn(len(setNames))]
			sn := setNames[rng.Intn(len(setNames))]
			R, S := in.MustRegion(rn), in.MustRegion(sn)
			ev := NewEvaluator(in)
			got, err := ev.layeredDirectlyIncluding(nil, R, S)
			if err != nil {
				t.Fatalf("trial %d: %s >d %s: %v", trial, rn, sn, err)
			}
			want := region.NaiveDirectlyIncluding(R, S, u.All())
			if !got.Equal(want) {
				t.Fatalf("trial %d: %s >d %s: layered=%v naive=%v (universe %v)",
					trial, rn, sn, got, want, u.All())
			}
		}
	}
}

// randomNestedInstance builds an instance over a synthetic document with
// properly nested region names A, B, C assigned at random.
func randomNestedInstance(rng *rand.Rand) (*index.Instance, []string) {
	content := strings.Repeat("x ", 64)
	doc := text.NewDocument("rand", content)
	in := index.NewInstance(doc)
	names := []string{"A", "B", "C"}
	groups := make(map[string][]region.Region)
	var subdivide func(lo, hi, depth int)
	subdivide = func(lo, hi, depth int) {
		if hi-lo < 2 || depth > 5 {
			return
		}
		n := names[rng.Intn(len(names))]
		groups[n] = append(groups[n], region.Region{Start: lo, End: hi})
		mid := lo + 1 + rng.Intn(hi-lo-1)
		if rng.Intn(4) > 0 {
			subdivide(lo, mid, depth+1)
		}
		if rng.Intn(4) > 0 {
			subdivide(mid, hi, depth+1)
		}
	}
	subdivide(0, len(content), 0)
	for _, n := range names {
		in.Define(n, region.FromRegions(groups[n]))
	}
	return in, names
}

func TestAlgebraParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		e, err := Parse(s)
		return err != nil || e != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCommonSubexpressionCache(t *testing.T) {
	in := fixture(t)
	ev := NewEvaluator(in)
	ev.Stats = &Stats{}
	// The full Chang chain occurs twice; the second occurrence must come
	// from the cache.
	const chang = `Reference > Authors > contains(Last_Name, "Chang")`
	e := MustParse(`(` + chang + `) + ((` + chang + `) & (Reference > Editors))`)
	got, err := ev.Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Stats.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1: %+v", ev.Stats.CacheHits, ev.Stats)
	}
	// Same answer as evaluating the Chang chain alone (the intersection
	// keeps the same single reference here).
	want := evalStr(t, in, chang)
	if !got.Equal(want) {
		t.Fatalf("cached %v vs %v", got, want)
	}
	// The cache resets between Eval calls.
	ev2 := NewEvaluator(in)
	ev2.Stats = &Stats{}
	if _, err := ev2.Eval(MustParse(`Reference > Authors`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ev2.Eval(MustParse(`Reference > Authors`)); err != nil {
		t.Fatal(err)
	}
	if ev2.Stats.CacheHits != 0 {
		t.Errorf("cache leaked across Eval calls: %+v", ev2.Stats)
	}
}
