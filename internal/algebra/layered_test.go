package algebra_test

import (
	"context"
	"testing"

	"qof/internal/algebra"
	"qof/internal/index"
	"qof/internal/refeval"
	"qof/internal/region"
	"qof/internal/text"
)

// regs is shorthand for building a region set from (start, end) pairs.
func regs(pairs ...int) region.Set {
	rs := make([]region.Region, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		rs = append(rs, region.Region{Start: pairs[i], End: pairs[i+1]})
	}
	return region.FromRegions(rs)
}

// TestLayeredDirectEdgeCases exercises the Section 3.1 layered while-loop
// program for ⊃d (and the universe-based ⊂d) on the boundary shapes of the
// region model: same-start and same-end nesting, adjacent siblings, chains
// deeper than two, identical region pairs, self-nested single names, and
// empty operands. Every case is checked three ways — layered program,
// universe-based implementation, and the naive refeval oracle — and the
// cases with a stated expectation also pin the exact result.
func TestLayeredDirectEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		define map[string]region.Set
		expr   string
		want   *region.Set // nil: only three-way agreement is checked
	}{
		{
			name:   "same-start nesting is direct",
			define: map[string]region.Set{"A": regs(0, 10), "B": regs(0, 5)},
			expr:   `A >d B`,
			want:   setPtr(regs(0, 10)),
		},
		{
			name:   "same-end nesting is direct",
			define: map[string]region.Set{"A": regs(0, 10), "B": regs(5, 10)},
			expr:   `A >d B`,
			want:   setPtr(regs(0, 10)),
		},
		{
			name: "same-start blocker intervenes",
			define: map[string]region.Set{
				"A": regs(0, 10), "M": regs(0, 7), "B": regs(0, 5),
			},
			expr: `A >d B`,
			want: setPtr(region.Empty),
		},
		{
			name: "adjacent siblings are both direct children",
			define: map[string]region.Set{
				"A": regs(0, 10), "B": regs(0, 5, 5, 10),
			},
			expr: `A >d B`,
			want: setPtr(regs(0, 10)),
		},
		{
			name: "adjacent siblings do not block each other",
			define: map[string]region.Set{
				"A": regs(0, 10), "B": regs(0, 5, 5, 10),
			},
			expr: `B <d A`,
			want: setPtr(regs(0, 5, 5, 10)),
		},
		{
			name: "depth-3 chain: only the adjacent pair is direct",
			define: map[string]region.Set{
				"A": regs(0, 20), "B": regs(2, 18), "C": regs(4, 16), "D": regs(6, 14),
			},
			expr: `A >d C`,
			want: setPtr(region.Empty),
		},
		{
			name: "depth-3 chain: adjacent pair",
			define: map[string]region.Set{
				"A": regs(0, 20), "B": regs(2, 18), "C": regs(4, 16), "D": regs(6, 14),
			},
			expr: `A >d B`,
			want: setPtr(regs(0, 20)),
		},
		{
			name: "depth-3 chain: union right operand",
			define: map[string]region.Set{
				"A": regs(0, 20), "B": regs(2, 18), "C": regs(4, 16), "D": regs(6, 14),
			},
			expr: `A >d (B + C + D)`,
			want: setPtr(regs(0, 20)),
		},
		{
			name: "depth-3 chain: direct inclusion from the middle",
			define: map[string]region.Set{
				"A": regs(0, 20), "B": regs(2, 18), "C": regs(4, 16), "D": regs(6, 14),
			},
			expr: `C >d D`,
			want: setPtr(regs(4, 16)),
		},
		{
			name: "identical region pair is not strict inclusion",
			define: map[string]region.Set{
				"A": regs(0, 10), "B": regs(0, 10),
			},
			expr: `A >d B`,
			want: setPtr(region.Empty),
		},
		{
			name: "self-nested single name",
			define: map[string]region.Set{
				"R": regs(0, 10, 1, 9, 2, 8, 3, 7),
			},
			expr: `R >d R`,
			want: setPtr(regs(0, 10, 1, 9, 2, 8)),
		},
		{
			name: "self-nested single name, included side",
			define: map[string]region.Set{
				"R": regs(0, 10, 1, 9, 2, 8, 3, 7),
			},
			expr: `R <d R`,
			want: setPtr(regs(1, 9, 2, 8, 3, 7)),
		},
		{
			name: "empty left operand",
			define: map[string]region.Set{
				"A": regs(0, 10), "E": region.Empty,
			},
			expr: `E >d A`,
			want: setPtr(region.Empty),
		},
		{
			name: "empty right operand",
			define: map[string]region.Set{
				"A": regs(0, 10), "E": region.Empty,
			},
			expr: `A >d E`,
			want: setPtr(region.Empty),
		},
		{
			name: "blocker only counts when strictly between",
			define: map[string]region.Set{
				// M equals B: not strictly between A and B.
				"A": regs(0, 10), "M": regs(2, 8), "B": regs(2, 8),
			},
			expr: `A >d B`,
			want: setPtr(regs(0, 10)),
		},
		{
			name: "sibling forests with multiple layers",
			define: map[string]region.Set{
				"A": regs(0, 10, 20, 30),
				"B": regs(1, 9, 21, 29),
				"C": regs(2, 8, 22, 28),
			},
			expr: `(A + B) >d C`,
			want: setPtr(regs(1, 9, 21, 29)),
		},
		{
			name: "layered loop crosses layers of the left operand",
			define: map[string]region.Set{
				// Two A-layers: [0,30) above [5,25); C sits directly
				// under the inner layer only.
				"A": regs(0, 30, 5, 25),
				"C": regs(10, 20),
			},
			expr: `A >d C`,
			want: setPtr(regs(5, 25)),
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			doc := text.NewDocument(tc.name, "0123456789012345678901234567890123456789")
			in := index.NewInstance(doc)
			for name, s := range tc.define {
				in.Define(name, s)
			}
			e := algebra.MustParse(tc.expr)

			universe := algebra.NewEvaluator(in)
			layered := algebra.NewEvaluator(in)
			layered.UseLayeredDirect = true
			oracle := refeval.New(in)

			gotU, err := universe.Eval(e)
			if err != nil {
				t.Fatalf("universe eval: %v", err)
			}
			gotL, err := layered.Eval(e)
			if err != nil {
				t.Fatalf("layered eval: %v", err)
			}
			gotO, err := oracle.Eval(e)
			if err != nil {
				t.Fatalf("oracle eval: %v", err)
			}
			gotSU, err := universe.StreamEval(context.Background(), e, nil, nil)
			if err != nil {
				t.Fatalf("streaming universe eval: %v", err)
			}
			gotSL, err := layered.StreamEval(context.Background(), e, nil, nil)
			if err != nil {
				t.Fatalf("streaming layered eval: %v", err)
			}
			if !gotL.Equal(gotU) {
				t.Errorf("layered %v != universe %v", gotL, gotU)
			}
			if !gotU.Equal(gotO) {
				t.Errorf("universe %v != oracle %v", gotU, gotO)
			}
			if !gotSU.Equal(gotU) {
				t.Errorf("streaming universe %v != materializing %v", gotSU, gotU)
			}
			if !gotSL.Equal(gotL) {
				t.Errorf("streaming layered %v != materializing %v", gotSL, gotL)
			}
			if tc.want != nil && !gotO.Equal(*tc.want) {
				t.Errorf("%s = %v, want %v", tc.expr, gotO, *tc.want)
			}
		})
	}
}

func setPtr(s region.Set) *region.Set { return &s }
