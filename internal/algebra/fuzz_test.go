package algebra

import (
	"testing"
)

// algebraSeeds are expressions from the test suite plus edge cases around
// operator juxtaposition (">d" vs "> dB"), string escapes, and malformed
// input.
var algebraSeeds = []string{
	`Reference > Authors > contains(Last_Name, "Chang")`,
	`Reference >d Authors >d Name >d contains(Last_Name, "Chang")`,
	`equals(Last_Name, "Chang") < Authors`,
	`A > B > C`,
	`(A > B) > C`,
	`A >d B`,
	`A > dB`,
	`A <d B`,
	`A >d B >d C`,
	`Reference > Authors > contains(Last_Name, "Chang") + Reference`,
	`Section > Section`,
	`Section > contains(Para, "needle")`,
	`A + B - C & D`,
	`starts(Key, "Corl")`,
	`freq(A, 2)`,
	`contains(T, "a \"quote\" and a \\ backslash")`,
	`contains(T, "tab\tnewline\n")`,
	`>>>`,
	`contains(`,
	`"unterminated`,
	`contains(T, "\x")`,
}

// FuzzAlgebraParse asserts the region-algebra parser never panics, and
// that every accepted expression round-trips: parse → String → reparse
// succeeds and re-rendering is a fixpoint.
func FuzzAlgebraParse(f *testing.F) {
	for _, s := range algebraSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		s1 := e.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("String() of accepted expression does not reparse:\n  input  %q\n  render %q\n  err    %v", src, s1, err)
		}
		if s2 := e2.String(); s2 != s1 {
			t.Fatalf("String() is not a fixpoint:\n  input   %q\n  render1 %q\n  render2 %q", src, s1, s2)
		}
	})
}
