package algebra

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"qof/internal/faultinject"
	"qof/internal/index"
	"qof/internal/mpm"
	"qof/internal/qerr"
	"qof/internal/region"
	"qof/internal/stats"
)

// ErrNotIndexed is wrapped by evaluation errors caused by a region name that
// the instance does not index. Callers detect it with errors.Is to decide
// whether a query needs the partial-indexing path.
var ErrNotIndexed = errors.New("region name is not indexed")

// Stats accumulates evaluation statistics for the experiments and for
// EXPLAIN output.
type Stats struct {
	Ops             int // operator applications
	DirectOps       int // of which ⊃d/⊂d
	RegionsTouched  int // total regions in intermediate results
	CacheHits       int // subexpressions answered from the per-call CSE memo
	ResultCacheHits int // subexpressions answered from the cross-query cache
	ShortCircuits   int // binary operators skipped via a provably empty operand
	PeakBytes       int // high-water mark of buffered region bytes (streaming evaluation)
	SharedScans     int // word leaves answered from a batched multi-pattern scan
	CSEHits         int // subexpressions received from another query's in-flight evaluation
}

// Evaluator evaluates region-algebra expressions against one index instance.
// The zero value is not usable; construct with NewEvaluator.
//
// An Evaluator holds no per-query state: the CSE memo and the statistics of
// one evaluation live in a per-call context, so a single Evaluator serves
// any number of concurrent Eval/EvalStats calls with no locking, provided
// the configuration fields (UseLayeredDirect, Stats) are not mutated while
// calls are in flight. Concurrent callers that want statistics should pass
// a per-call *Stats to EvalStats rather than sharing the Stats field.
type Evaluator struct {
	in *index.Instance

	// UseLayeredDirect evaluates ⊃d with the paper's layered while-loop
	// program (Section 3.1) instead of the universe-based implementation.
	// It exists to reproduce the paper's cost argument; results agree on
	// properly nested instances.
	UseLayeredDirect bool

	// Stats, when non-nil, accumulates statistics across Eval calls. It is
	// read at the start of each Eval call; concurrent Eval calls sharing
	// one Stats would race, so concurrent callers use EvalStats instead.
	Stats *Stats

	// Results, when non-nil, is a cross-query cache of subexpression
	// results (the engine's LRU). Only expressions whose static Cost
	// reaches ResultMinCost are consulted and stored, and keys embed the
	// instance epoch so index mutations invalidate stale entries.
	Results ResultCache

	// ResultMinCost gates Results; 0 means DefaultResultMinCost.
	ResultMinCost int

	// CostStats, when non-nil, enables cardinality-aware operand
	// ordering: for operators that are empty whenever one operand is,
	// the side estimated cheaper (or provably empty) evaluates first so
	// an empty outcome can skip the other side entirely.
	CostStats *stats.Stats

	// Shared, when non-nil, enables cross-query common-subexpression
	// elimination: cache-worthy subexpressions join the engine's in-flight
	// table so concurrent queries evaluate each one once (see inflight.go).
	// Budgeted evaluations bypass it for the same reason they bypass cache
	// reads.
	Shared *Inflight
}

// ResultCache is the cross-query result cache interface the engine
// implements. Implementations must be safe for concurrent use; stored sets
// are immutable.
type ResultCache interface {
	Get(key string) (region.Set, bool)
	Put(key string, s region.Set)
}

// DefaultResultMinCost is the static-cost threshold below which results are
// not worth caching across queries: anything cheaper than one inclusion
// sweep is recomputed faster than it is looked up and stored.
const DefaultResultMinCost = CostInclusion

// NewEvaluator creates an evaluator over the instance.
func NewEvaluator(in *index.Instance) *Evaluator {
	return &Evaluator{in: in}
}

// Instance returns the instance the evaluator runs against.
func (ev *Evaluator) Instance() *index.Instance { return ev.in }

// Budget is the per-query region allowance shared by every evaluation of
// one query: each operator result charges its cardinality, and crossing the
// limit aborts the evaluation with an error wrapping qerr.ErrBudgetExceeded.
// A Budget is not safe for concurrent use — the engine evaluates phase-1
// expressions of one query sequentially — and a nil *Budget is unlimited.
type Budget struct {
	max       int
	remaining int
}

// NewBudget creates a budget of maxRegions cumulative result regions;
// maxRegions <= 0 returns nil (unlimited).
func NewBudget(maxRegions int) *Budget {
	if maxRegions <= 0 {
		return nil
	}
	return &Budget{max: maxRegions, remaining: maxRegions}
}

// Used reports how many regions have been charged so far; 0 for a nil
// (unlimited) budget.
func (b *Budget) Used() int {
	if b == nil {
		return 0
	}
	return b.max - b.remaining
}

// charge deducts n regions, failing once the allowance is spent.
func (b *Budget) charge(n int) error {
	if b == nil {
		return nil
	}
	b.remaining -= n
	if b.remaining < 0 {
		return fmt.Errorf("algebra: regions budget of %d exceeded: %w", b.max, qerr.ErrBudgetExceeded)
	}
	return nil
}

// pendingPut is a result-cache write held back until the whole evaluation
// succeeds, so a canceled or budget-killed call never publishes anything.
type pendingPut struct {
	key string
	set region.Set
}

// evalCtx is the state of one evaluation call: the CSE memo, the stats
// sink, and the cancellation and budget controls. Keeping it out of the
// Evaluator is what makes overlapping calls safe without locks.
type evalCtx struct {
	// memo caches subexpression results within one Eval call, so common
	// subexpressions of composite queries are evaluated once (the goal
	// Section 5.2 states for boolean selection criteria). Expressions
	// are pure, so caching never changes results.
	memo  map[string]region.Set
	stats *Stats

	// cctx, when non-nil, is the evaluation's context: eval polls it at
	// every operator application and the region kernels poll it through
	// chk mid-sweep, so deadlines and cancels take effect inside one
	// operator, not only between queries. It is nil when the caller's
	// context can never be canceled.
	cctx context.Context
	// chk adapts cctx to the region kernels' Checker. It is allocated
	// once per pooled context (it reads cctx at call time), never per
	// evaluation.
	chk region.Checker

	// budget, when non-nil, is the query's region allowance.
	budget *Budget

	// pending holds result-cache writes until the evaluation completes;
	// a failed evaluation discards them (see satellite: canceled, timed
	// out or budget-killed evaluations must never be cached).
	pending []pendingPut

	// scan, when non-nil, is the batch's multi-pattern scan result; Word
	// leaves it covers are answered from it instead of probing the index.
	scan *mpm.Result

	// rkPrefix memoizes the epoch prefix of result-cache keys for one
	// evaluation — the epoch is stable within a call, so the strconv
	// formatting runs once instead of once per cache-worthy node.
	rkPrefix string
}

// resultKey returns the epoch-prefixed cross-query key for exprKey,
// memoizing the epoch prefix across the call.
func (ctx *evalCtx) resultKey(ev *Evaluator, exprKey string) string {
	if ctx.rkPrefix == "" {
		ctx.rkPrefix = strconv.FormatUint(ev.in.Epoch(), 36) + "|"
	}
	return ctx.rkPrefix + exprKey
}

// poll returns the context error once the evaluation's context is done.
func (ctx *evalCtx) poll() error {
	if ctx.cctx == nil {
		return nil
	}
	return ctx.cctx.Err()
}

// checker returns the kernel Checker for this evaluation, nil when the
// evaluation is not cancelable (so kernels skip polling entirely).
func (ctx *evalCtx) checker() region.Checker {
	if ctx.cctx == nil {
		return nil
	}
	return ctx.chk
}

// Eval evaluates e and returns the resulting region set. Within one call,
// identical subexpressions are computed once. Statistics accumulate into
// the Stats field when set.
func (ev *Evaluator) Eval(e Expr) (region.Set, error) {
	return ev.EvalStats(e, ev.Stats)
}

// ctxPool recycles evaluation contexts (and their memo maps) across calls:
// under concurrent serving every query used to allocate a fresh map. The
// kernel checker closure is allocated here, once per pooled context.
var ctxPool = sync.Pool{New: func() any {
	ctx := &evalCtx{memo: make(map[string]region.Set, 8)}
	ctx.chk = ctx.poll
	return ctx
}}

// EvalStats evaluates e, accumulating statistics into st when non-nil.
// This is the entry point for concurrent callers: each call gets its own
// memo and stats sink, so overlapping calls on one Evaluator never contend.
func (ev *Evaluator) EvalStats(e Expr, st *Stats) (region.Set, error) {
	return ev.EvalContext(context.Background(), e, st, nil)
}

// EvalContext evaluates e under a context and an optional region budget.
// Cancellation and deadline expiry are polled at every operator application
// and inside the region kernels (inclusion sweeps, the layered ⊃d loop,
// word selection), so they take effect mid-evaluation; the error is then
// ctx.Err() (context.Canceled or context.DeadlineExceeded). Budget
// exhaustion surfaces as an error wrapping qerr.ErrBudgetExceeded. A failed
// evaluation writes nothing to the cross-query result cache.
func (ev *Evaluator) EvalContext(cctx context.Context, e Expr, st *Stats, b *Budget) (region.Set, error) {
	ctx := ctxPool.Get().(*evalCtx)
	ctx.stats = st
	if cctx != nil && cctx.Done() != nil {
		ctx.cctx = cctx
	}
	ctx.budget = b
	ctx.scan = mpm.FromContext(cctx)
	out, err := ev.eval(ctx, e)
	if err == nil && ev.Results != nil {
		for _, p := range ctx.pending {
			ev.Results.Put(p.key, p.set)
		}
	}
	clear(ctx.memo)
	for i := range ctx.pending {
		ctx.pending[i] = pendingPut{}
	}
	ctx.pending = ctx.pending[:0]
	ctx.stats, ctx.cctx, ctx.budget, ctx.scan = nil, nil, nil, nil
	ctx.rkPrefix = ""
	ctxPool.Put(ctx)
	return out, err
}

func (ev *Evaluator) eval(ctx *evalCtx, e Expr) (region.Set, error) {
	if err := ctx.poll(); err != nil {
		return region.Empty, err
	}
	var key, rkey string
	worthy := false
	switch e.(type) {
	case Binary, Select, Unary, Near, Freq:
		key = e.String()
		if cached, ok := ctx.memo[key]; ok {
			if ctx.stats != nil {
				ctx.stats.CacheHits++
			}
			return cached, nil
		}
		// Worthiness and the epoch-prefixed key are computed once here and
		// shared by the cache read, the CSE join and the deferred write —
		// the miss path used to pay the Cost walk and the key allocation
		// twice per node.
		if ev.Results != nil && ev.cacheWorthy(e) {
			worthy = true
			rkey = ctx.resultKey(ev, key)
			// Budgeted evaluations bypass cache reads (writes still happen):
			// a cached subexpression skips the very work the budget meters,
			// which would make budget enforcement depend on cache state.
			// They bypass the CSE join for the same reason.
			if ctx.budget == nil {
				if s, ok := ev.Results.Get(rkey); ok {
					if ctx.stats != nil {
						ctx.stats.ResultCacheHits++
					}
					ctx.memo[key] = s
					return s, nil
				}
				if ev.Shared != nil {
					if ferr := faultinject.Hit(faultinject.EngineCSE); ferr == nil {
						return ev.evalShared(ctx, e, key, rkey)
					}
					// Injected fault: bypass sharing, evaluate solo.
				}
			}
		}
	}
	return ev.evalTail(ctx, e, key, rkey, worthy)
}

// evalTail is the uncached remainder of eval: compute, charge, memoize,
// and defer the cross-query cache write.
func (ev *Evaluator) evalTail(ctx *evalCtx, e Expr, key, rkey string, worthy bool) (region.Set, error) {
	out, err := ev.evalUncached(ctx, e)
	if err != nil {
		return out, err
	}
	// Every operator result charges the region budget, leaves included: a
	// hostile chain's cost shows up in its intermediate cardinalities.
	if err := ctx.budget.charge(out.Len()); err != nil {
		return region.Empty, err
	}
	if key != "" {
		ctx.memo[key] = out
		if worthy {
			// Held back until the whole evaluation succeeds: a killed
			// evaluation must never publish cache entries.
			ctx.pending = append(ctx.pending, pendingPut{key: rkey, set: out})
		}
	}
	return out, nil
}

// evalShared evaluates e through the cross-query in-flight table: the first
// query to need this subexpression leads and evaluates it, concurrent
// queries wait and share the finished set.
func (ev *Evaluator) evalShared(ctx *evalCtx, e Expr, key, rkey string) (region.Set, error) {
	for {
		fl, leader := ev.Shared.Join(rkey)
		if leader {
			return ev.evalLead(ctx, e, key, rkey, fl)
		}
		s, err := fl.Wait(ctx.cctx)
		if err == nil {
			if ctx.stats != nil {
				ctx.stats.CSEHits++
			}
			ctx.memo[key] = s
			// Waiters pend the write too: the set is complete (flights only
			// succeed with fully evaluated sets), so a surviving waiter may
			// publish it even if the leader's query is later killed.
			ctx.pending = append(ctx.pending, pendingPut{key: rkey, set: s})
			return s, nil
		}
		if ctx.cctx != nil && ctx.cctx.Err() != nil {
			return region.Empty, ctx.cctx.Err()
		}
		if !retryableLead(err) {
			return region.Empty, err
		}
		// The leader died of its own cancellation (or panic unwind) while
		// this waiter is live: loop and take over as the new leader.
	}
}

// evalLead runs the leader side of one flight. The flight always completes
// — with the result, the leader's error, or errLeaderAborted on panic
// unwind — so waiters can never hang on it.
func (ev *Evaluator) evalLead(ctx *evalCtx, e Expr, key, rkey string, fl *Flight) (out region.Set, err error) {
	completed := false
	defer func() {
		if !completed {
			ev.Shared.Complete(rkey, fl, region.Empty, errLeaderAborted)
		}
	}()
	out, err = ev.evalTail(ctx, e, key, rkey, true)
	completed = true
	ev.Shared.Complete(rkey, fl, out, err)
	return out, err
}

// cacheWorthy reports whether e is expensive enough for the cross-query
// cache.
func (ev *Evaluator) cacheWorthy(e Expr) bool {
	minCost := ev.ResultMinCost
	if minCost == 0 {
		minCost = DefaultResultMinCost
	}
	return CostAtLeast(e, minCost)
}

// resultKey embeds the instance epoch so mutations (Define/Drop/Splice)
// orphan every previously cached entry.
func (ev *Evaluator) resultKey(exprKey string) string {
	return strconv.FormatUint(ev.in.Epoch(), 36) + "|" + exprKey
}

// SharedKey returns the epoch-prefixed cross-query key for e and whether e
// is worth caching/sharing at all, computing both exactly once for callers
// that need the key for more than one operation (a cache read, a CSE join
// and a publish share one Cost walk and one key allocation).
func (ev *Evaluator) SharedKey(e Expr) (string, bool) {
	switch e.(type) {
	case Binary, Select, Unary, Near, Freq:
		if ev.Results == nil || !ev.cacheWorthy(e) {
			return "", false
		}
		return ev.resultKey(e.String()), true
	}
	return "", false
}

// CachedResultKey reads the cross-query cache under a key obtained from
// SharedKey.
func (ev *Evaluator) CachedResultKey(key string) (region.Set, bool) {
	if ev.Results == nil {
		return region.Empty, false
	}
	return ev.Results.Get(key)
}

// PublishResultKey writes a complete result under a key obtained from
// SharedKey. Callers uphold the publish invariant: only fully drained,
// successful results.
func (ev *Evaluator) PublishResultKey(key string, s region.Set) {
	if ev.Results != nil {
		ev.Results.Put(key, s)
	}
}

// CachedResult returns the cross-query cached result for e when present,
// letting the engine skip evaluation setup entirely on repeated queries.
func (ev *Evaluator) CachedResult(e Expr) (region.Set, bool) {
	key, ok := ev.SharedKey(e)
	if !ok {
		return region.Empty, false
	}
	return ev.Results.Get(key)
}

func (ev *Evaluator) evalUncached(ctx *evalCtx, e Expr) (region.Set, error) {
	switch e := e.(type) {
	case Name:
		s, ok := ev.in.Region(e.Ident)
		if !ok {
			return region.Empty, fmt.Errorf("algebra: region %q: %w", e.Ident, ErrNotIndexed)
		}
		return s, nil
	case Word:
		if s, ok := ctx.scan.Lookup(e.W); ok {
			if ctx.stats != nil {
				ctx.stats.SharedScans++
			}
			return s, nil
		}
		return ev.in.Words().MatchPoints(e.W), nil
	case Prefix:
		return ev.in.Words().PrefixMatchPoints(e.P), nil
	case Match:
		return ev.in.Words().SubstringMatchPoints(e.S), nil
	case Select:
		arg, err := ev.eval(ctx, e.Arg)
		if err != nil {
			return region.Empty, err
		}
		var out region.Set
		switch e.Mode {
		case SelContains:
			if pts, ok := ctx.scan.Lookup(e.W); ok {
				// The batch scan already produced w's whole-word occurrences;
				// the containment filter below is exactly the one
				// SelectContainingCtl applies to the postings, so the result
				// is identical.
				if ctx.stats != nil {
					ctx.stats.SharedScans++
				}
				out, err = selectContainingIn(arg, pts.Regions(), ctx.checker())
			} else {
				out, err = ev.in.Words().SelectContainingCtl(arg, e.W, ctx.checker())
			}
		case SelEquals:
			out, err = ev.in.Words().SelectEqualsCtl(arg, e.W, ctx.checker())
		default:
			out, err = ev.in.Words().SelectPrefixCtl(arg, e.W, ctx.checker())
		}
		if err != nil {
			return region.Empty, err
		}
		ctx.count(out, false)
		return out, nil
	case Unary:
		arg, err := ev.eval(ctx, e.Arg)
		if err != nil {
			return region.Empty, err
		}
		var out region.Set
		if e.Op == OpInnermost {
			out = arg.Innermost()
		} else {
			out = arg.Outermost()
		}
		ctx.count(out, false)
		return out, nil
	case Near:
		l, err := ev.eval(ctx, e.E)
		if err != nil {
			return region.Empty, err
		}
		to, err := ev.eval(ctx, e.To)
		if err != nil {
			return region.Empty, err
		}
		out := evalNear(l, to, e.K)
		ctx.count(out, false)
		return out, nil
	case Freq:
		arg, err := ev.eval(ctx, e.Arg)
		if err != nil {
			return region.Empty, err
		}
		out := ev.evalFreq(arg, e.W, e.N)
		ctx.count(out, false)
		return out, nil
	case Binary:
		lFirst := true
		if ev.CostStats != nil && emptyAnnihilates(e.Op, false) {
			// Both operand orders can short-circuit: evaluate the side
			// the statistics price cheaper (preferring a provably empty
			// one) so an empty outcome skips the expensive side.
			le := EstimateCost(e.L, ev.CostStats)
			re := EstimateCost(e.R, ev.CostStats)
			if (re.Card == 0 && le.Card > 0) ||
				((re.Card == 0) == (le.Card == 0) &&
					(re.Cost < le.Cost || (re.Cost == le.Cost && re.Card < le.Card))) {
				lFirst = false
			}
		}
		first, second := e.L, e.R
		if !lFirst {
			first, second = e.R, e.L
		}
		fs, err := ev.eval(ctx, first)
		if err != nil {
			return region.Empty, err
		}
		if fs.IsEmpty() && emptyAnnihilates(e.Op, lFirst) && ev.safeToSkip(second) {
			// The operator is empty whenever this operand is, and the
			// skipped side cannot fail, so its evaluation is pure cost.
			if ctx.stats != nil {
				ctx.stats.ShortCircuits++
			}
			return region.Empty, nil
		}
		ss, err := ev.eval(ctx, second)
		if err != nil {
			return region.Empty, err
		}
		l, r := fs, ss
		if !lFirst {
			l, r = ss, fs
		}
		out, err := ev.apply(ctx, e.Op, l, r)
		if err != nil {
			return region.Empty, err
		}
		ctx.count(out, e.Op.IsDirect())
		return out, nil
	default:
		return region.Empty, fmt.Errorf("algebra: unknown expression %T", e)
	}
}

// selectContainingIn is the σ_w containment filter over occurrences that
// came from a batched scan instead of the postings list: the regions of s
// containing at least one occurrence. The predicate is byte-for-byte the one
// index.WordIndex.SelectContainingCtl applies, and both sources produce the
// occurrences sorted by start, so the result is identical.
func selectContainingIn(s region.Set, occ []region.Region, check region.Checker) (region.Set, error) {
	if len(occ) == 0 {
		return region.Empty, nil
	}
	return s.FilterCtl(func(r region.Region) bool {
		i := sort.Search(len(occ), func(i int) bool { return occ[i].Start >= r.Start })
		return i < len(occ) && occ[i].End <= r.End
	}, check)
}

// emptyAnnihilates reports whether op's result is necessarily empty when
// one operand is: true for ∩, ⊃, ⊂, ⊃d and ⊂d on either side, and for −
// only when the left operand is the empty one (L − ∅ = L). ∪ never
// annihilates. firstWasL identifies which operand was evaluated; passing
// false asks whether the right side alone can annihilate, which is also
// the condition for operand reordering to pay off.
func emptyAnnihilates(op BinOp, firstWasL bool) bool {
	switch op {
	case OpUnion:
		return false
	case OpDiff:
		return firstWasL
	default:
		return true
	}
}

// safeToSkip reports whether e can be skipped without losing an error:
// evaluation only fails on region names the instance does not index, so an
// expression whose names are all indexed evaluates without error.
func (ev *Evaluator) safeToSkip(e Expr) bool {
	safe := true
	Walk(e, func(x Expr) {
		if n, ok := x.(Name); ok && !ev.in.Has(n.Ident) {
			safe = false
		}
	})
	return safe
}

func (ev *Evaluator) apply(ctx *evalCtx, op BinOp, l, r region.Set) (region.Set, error) {
	switch op {
	case OpUnion:
		return l.Union(r), nil
	case OpDiff:
		return l.Diff(r), nil
	case OpIntersect:
		return l.Intersect(r), nil
	case OpIncluding:
		return l.IncludingCtl(r, ctx.checker())
	case OpIncluded:
		return l.IncludedCtl(r, ctx.checker())
	case OpDirIncluding:
		if ev.UseLayeredDirect {
			return ev.layeredDirectlyIncluding(ctx.checker(), l, r)
		}
		return ev.in.Universe().DirectlyIncludingCtl(l, r, ctx.checker())
	case OpDirIncluded:
		return ev.in.Universe().DirectlyIncludedCtl(l, r, ctx.checker())
	default:
		return region.Empty, fmt.Errorf("algebra: unknown operator %v", op)
	}
}

func (ctx *evalCtx) count(out region.Set, direct bool) {
	if ctx.stats == nil {
		return
	}
	ctx.stats.Ops++
	if direct {
		ctx.stats.DirectOps++
	}
	ctx.stats.RegionsTouched += out.Len()
}

// layeredDirectlyIncluding computes R ⊃d S with the paper's Section 3.1
// program: iterate over nested layers of R (outermost first) and, for each
// layer, select the layer regions that include an S region with no other
// indexed region in between. The in-between test subtracts the S regions
// that sit strictly inside some indexed region T strictly inside the layer
// (the paper writes S ⊂ T ⊂ R_layer; strict inclusion realises the "other
// region" condition under position-pair identity).
//
// The program is exact on properly nested universes — the case the paper's
// structuring schemas produce — and exists mainly to exhibit the cost of ⊃d
// relative to ⊃. The while-loop polls check at every layer (and passes it
// into each inner sweep), so a deadline interrupts even a deep ⊃d chain over
// a hostile document mid-operator. Both the materializing and the streaming
// executor call it, which is why it takes a bare Checker.
func (ev *Evaluator) layeredDirectlyIncluding(check region.Checker, R, S region.Set) (region.Set, error) {
	layer := R.Outermost()
	rest := R.Diff(layer)
	result := region.Empty
	for {
		if check != nil {
			if err := check(); err != nil {
				return region.Empty, err
			}
		}
		cont, err := layer.IncludingCtl(S, check)
		if err != nil {
			return region.Empty, err
		}
		if cont.IsEmpty() {
			return result, nil
		}
		blocked := region.Empty
		for _, tName := range ev.in.Names() {
			T := ev.in.MustRegion(tName)
			between, err := T.IncludedCtl(layer, check) // T regions strictly inside a layer region
			if err != nil {
				return region.Empty, err
			}
			inner, err := S.IncludedCtl(between, check)
			if err != nil {
				return region.Empty, err
			}
			blocked = blocked.Union(inner)
		}
		sel, err := layer.IncludingCtl(S.Diff(blocked), check)
		if err != nil {
			return region.Empty, err
		}
		result = result.Union(sel)
		layer = rest.Outermost()
		rest = rest.Diff(layer)
	}
}
