package algebra

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"qof/internal/region"
)

// lockedCache is a concurrency-safe ResultCache for shared-execution tests
// (mapCache is deliberately unsynchronized, like the tests that use it).
type lockedCache struct {
	mu   sync.Mutex
	m    map[string]region.Set
	puts int
}

func newLockedCache() *lockedCache {
	return &lockedCache{m: make(map[string]region.Set)}
}

func (c *lockedCache) Get(key string) (region.Set, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[key]
	return s, ok
}

func (c *lockedCache) Put(key string, s region.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = s
	c.puts++
}

// TestInflightLeaderWaiter checks the basic singleflight protocol: one
// leader, one waiter, the waiter receives exactly the completed set.
func TestInflightLeaderWaiter(t *testing.T) {
	inf := NewInflight()
	fl, leader := inf.Join("k")
	if !leader {
		t.Fatal("first Join is not the leader")
	}
	fl2, leader2 := inf.Join("k")
	if leader2 || fl2 != fl {
		t.Fatalf("second Join = (%p, %v), want the leader's flight and false", fl2, leader2)
	}
	want := region.FromRegions([]region.Region{{Start: 1, End: 5}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s, err := fl2.Wait(context.Background())
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		if !s.Equal(want) {
			t.Errorf("Wait = %v, want %v", s, want)
		}
	}()
	inf.Complete("k", fl, want, nil)
	<-done

	// The key is retired: the next Join starts a fresh flight.
	if _, leader := inf.Join("k"); !leader {
		t.Error("Join after Complete did not start a fresh flight")
	}
}

// TestInflightHandoff is the leader-cancel handoff: a canceled leader
// completes with its context error, both waiters treat that as retryable,
// exactly one re-joins as the new leader, and the remaining waiter receives
// the new leader's set.
func TestInflightHandoff(t *testing.T) {
	inf := NewInflight()
	fl, _ := inf.Join("k")
	want := region.FromRegions([]region.Region{{Start: 2, End: 9}})

	const waiters = 2
	results := make(chan region.Set, waiters)
	var leadersTaken sync.WaitGroup
	leadersTaken.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			w, leader := inf.Join("k")
			if leader {
				t.Error("waiter joined as leader before the cancel")
			}
			leadersTaken.Done()
			for {
				s, err := w.Wait(context.Background())
				if err == nil {
					results <- s
					return
				}
				if !retryableLead(err) {
					t.Errorf("waiter got non-retryable %v", err)
					results <- region.Empty
					return
				}
				var leader bool
				w, leader = inf.Join("k")
				if leader {
					// The handoff: this waiter evaluates and publishes.
					inf.Complete("k", w, want, nil)
					results <- want
					return
				}
			}
		}()
	}
	leadersTaken.Wait()
	// The original leader is canceled mid-evaluation.
	inf.Complete("k", fl, region.Empty, context.Canceled)
	for i := 0; i < waiters; i++ {
		if s := <-results; !s.Equal(want) {
			t.Errorf("waiter %d got %v, want %v", i, s, want)
		}
	}
}

// TestInflightAbort checks the panic-unwind path: waiters see a retryable
// error, never a hang.
func TestInflightAbort(t *testing.T) {
	inf := NewInflight()
	fl, _ := inf.Join("k")
	w, _ := inf.Join("k")
	go inf.Abort("k", fl)
	_, err := w.Wait(context.Background())
	if !errors.Is(err, errLeaderAborted) {
		t.Fatalf("Wait after Abort = %v, want errLeaderAborted", err)
	}
	if !retryableLead(err) {
		t.Error("errLeaderAborted is not retryable")
	}
}

// TestInflightWaiterContext checks that a waiter whose own context dies
// leaves immediately with its context error, without waiting for the leader.
func TestInflightWaiterContext(t *testing.T) {
	inf := NewInflight()
	_, _ = inf.Join("k") // leader never completes
	w, _ := inf.Join("k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with dead ctx = %v, want context.Canceled", err)
	}
}

// TestInflightDeterministicError checks that a leader's deterministic
// failure (not cancellation) propagates to waiters as-is: retrying would
// fail identically.
func TestInflightDeterministicError(t *testing.T) {
	inf := NewInflight()
	fl, _ := inf.Join("k")
	w, _ := inf.Join("k")
	detErr := errors.New("unknown name")
	go inf.Complete("k", fl, region.Empty, detErr)
	_, err := w.Wait(context.Background())
	if !errors.Is(err, detErr) {
		t.Fatalf("Wait = %v, want the deterministic error", err)
	}
	if retryableLead(err) {
		t.Error("deterministic error classified retryable")
	}
}

// waitNoGoroutineLeak fails the test when the goroutine count does not
// return to (roughly) its pre-test level: a leaked CSE waiter would park on
// a flight channel forever.
func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestEvalSharedStress hammers one shared evaluator from many goroutines —
// some with contexts that cancel mid-flight — and checks that every
// uncanceled evaluation returns exactly the sequential answer and that no
// waiter goroutine is left parked on a flight. Run under -race this is the
// CSE concurrency gate.
func TestEvalSharedStress(t *testing.T) {
	in := fixture(t)
	baseline, err := NewEvaluator(in).Eval(MustParse(changChain))
	if err != nil {
		t.Fatal(err)
	}

	ev := NewEvaluator(in)
	ev.Results = newLockedCache()
	ev.Shared = NewInflight()

	before := runtime.NumGoroutine()
	const goroutines = 24
	const rounds = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < rounds; r++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if g%3 == 0 {
					// A third of the clients cancel at a random point,
					// exercising the leader-cancel handoff and the
					// waiter-leaves paths.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				var st Stats
				got, err := ev.EvalContext(ctx, MustParse(changChain), &st, nil)
				cancel()
				if err != nil {
					if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("goroutine %d: %v", g, err)
					}
					continue
				}
				if !got.Equal(baseline) {
					t.Errorf("goroutine %d: shared result %v, want %v", g, got, baseline)
				}
			}
		}(g)
	}
	wg.Wait()
	waitNoGoroutineLeak(t, before)
}

// TestEvalSharedCounts checks the CSEHits accounting on a deterministic
// two-party flight: a leader parked inside its evaluation (via a cache Get
// that blocks the second arrival until the first passes) is joined by a
// waiter which must report a CSE hit.
func TestEvalSharedCounts(t *testing.T) {
	in := fixture(t)
	ev := NewEvaluator(in)
	cache := newLockedCache()
	ev.Results = cache
	ev.Shared = NewInflight()

	// Prime: a solo evaluation populates the cache; clear it but keep the
	// evaluator, then run two evaluations back to back — the second joins
	// the first only if they overlap, so force overlap with a flight held
	// open by hand.
	key := MustParse(changChain).String()
	rkey := ev.resultKey(key)
	fl, leader := ev.Shared.Join(rkey)
	if !leader {
		t.Fatal("test holds the flight but was not its leader")
	}
	want, err := NewEvaluator(in).Eval(MustParse(changChain))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Stats, 1)
	go func() {
		var st Stats
		got, err := ev.EvalContext(context.Background(), MustParse(changChain), &st, nil)
		if err != nil {
			t.Errorf("waiter: %v", err)
		} else if !got.Equal(want) {
			t.Errorf("waiter got %v, want %v", got, want)
		}
		done <- st
	}()
	// The waiter is now (or will be) parked on the flight; publish it.
	time.Sleep(2 * time.Millisecond)
	ev.Shared.Complete(rkey, fl, want, nil)
	st := <-done
	if st.CSEHits == 0 {
		t.Errorf("waiter reported no CSE hit: %+v", st)
	}
}
