// Package algebra implements the PAT region algebra of Section 3 of the
// paper: expressions over named region indices with union, intersection,
// difference, word selection, innermost/outermost, inclusion (⊃, ⊂) and
// direct inclusion (⊃d, ⊂d), together with a textual syntax, an evaluator
// over an index instance, and a static cost model.
//
// The textual syntax (used by the CLI, tests and examples):
//
//	expr   := incl (("+" | "-") incl)*            union, difference
//	incl   := isect ((">" | ">d" | "<" | "<d") incl)?   right-grouped
//	isect  := term ("&" term)*
//	term   := NAME | "(" expr ")"
//	        | "word"(STRING) | "prefix"(STRING)
//	        | "contains"(expr, STRING) | "equals"(expr, STRING)
//	        | "innermost"(expr) | "outermost"(expr)
//
// Following the paper, the inclusion operators are not associative and group
// from the right: A > B > C parses as A > (B > C).
package algebra

import (
	"fmt"
	"strconv"
)

// BinOp identifies a binary operator of the region algebra.
type BinOp int

// Binary operators. The direct variants consult the whole index instance to
// rule out regions lying in between, which makes them significantly more
// expensive (Section 3.1).
const (
	OpUnion        BinOp = iota // e + e
	OpDiff                      // e - e
	OpIntersect                 // e & e
	OpIncluding                 // e > e   (⊃)
	OpIncluded                  // e < e   (⊂)
	OpDirIncluding              // e >d e  (⊃d)
	OpDirIncluded               // e <d e  (⊂d)
)

// IsInclusion reports whether the operator is one of ⊃, ⊂, ⊃d, ⊂d.
func (op BinOp) IsInclusion() bool { return op >= OpIncluding }

// IsDirect reports whether the operator is ⊃d or ⊂d.
func (op BinOp) IsDirect() bool { return op == OpDirIncluding || op == OpDirIncluded }

func (op BinOp) String() string {
	switch op {
	case OpUnion:
		return "+"
	case OpDiff:
		return "-"
	case OpIntersect:
		return "&"
	case OpIncluding:
		return ">"
	case OpIncluded:
		return "<"
	case OpDirIncluding:
		return ">d"
	case OpDirIncluded:
		return "<d"
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// Pretty returns the paper's symbol for the operator.
func (op BinOp) Pretty() string {
	switch op {
	case OpUnion:
		return "∪"
	case OpDiff:
		return "−"
	case OpIntersect:
		return "∩"
	case OpIncluding:
		return "⊃"
	case OpIncluded:
		return "⊂"
	case OpDirIncluding:
		return "⊃d"
	case OpDirIncluded:
		return "⊂d"
	}
	return op.String()
}

// UnOp identifies a unary operator.
type UnOp int

// Unary operators ι and ω.
const (
	OpInnermost UnOp = iota // ι
	OpOutermost             // ω
)

func (op UnOp) String() string {
	if op == OpInnermost {
		return "innermost"
	}
	return "outermost"
}

// SelMode distinguishes the two selection flavours.
type SelMode int

const (
	// SelContains is the paper's σ_w: regions containing the word w.
	SelContains SelMode = iota
	// SelEquals keeps regions whose text is exactly w; used when a query
	// compares a leaf attribute to a constant ("a Last_Name region that
	// is the word Chang").
	SelEquals
	// SelPrefix keeps regions whose text starts with w (PAT's
	// lexicographical search applied to a region's own text).
	SelPrefix
)

func (m SelMode) String() string {
	switch m {
	case SelContains:
		return "contains"
	case SelEquals:
		return "equals"
	default:
		return "starts"
	}
}

// Expr is a region-algebra expression.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Name refers to a named region index R_i.
type Name struct{ Ident string }

// Word denotes the match points of the exact word W (the word index).
type Word struct{ W string }

// Prefix denotes the match points of every word starting with P (PAT
// sistring search).
type Prefix struct{ P string }

// Match denotes the match points of every occurrence of the substring S
// anywhere in the text (byte-level suffix-array search).
type Match struct{ S string }

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Unary applies ι or ω.
type Unary struct {
	Op  UnOp
	Arg Expr
}

// Select applies σ: keep regions of Arg related to the word W per Mode.
type Select struct {
	Mode SelMode
	W    string
	Arg  Expr
}

func (Name) isExpr()   {}
func (Word) isExpr()   {}
func (Prefix) isExpr() {}
func (Match) isExpr()  {}
func (Binary) isExpr() {}
func (Unary) isExpr()  {}
func (Select) isExpr() {}

func (e Name) String() string   { return e.Ident }
func (e Word) String() string   { return "word(" + strconv.Quote(e.W) + ")" }
func (e Prefix) String() string { return "prefix(" + strconv.Quote(e.P) + ")" }
func (e Match) String() string  { return "match(" + strconv.Quote(e.S) + ")" }

func (e Binary) String() string {
	l := maybeParen(e.L, e.Op, true)
	r := maybeParen(e.R, e.Op, false)
	return l + " " + e.Op.String() + " " + r
}

func (e Unary) String() string {
	return e.Op.String() + "(" + e.Arg.String() + ")"
}

func (e Select) String() string {
	return e.Mode.String() + "(" + e.Arg.String() + ", " + strconv.Quote(e.W) + ")"
}

// precedence levels for printing: higher binds tighter.
func prec(op BinOp) int {
	// Must mirror the parser's nesting: parseExpr (+,-) calls
	// parseInclusion, which calls parseIntersect — so & binds tighter than
	// the inclusions, which bind tighter than + and -.
	switch op {
	case OpUnion, OpDiff:
		return 1
	case OpIntersect:
		return 3
	default: // inclusion operators
		return 2
	}
}

// maybeParen parenthesizes a child when required so that the printed form
// re-parses to the same tree.
func maybeParen(child Expr, parent BinOp, leftChild bool) string {
	b, ok := child.(Binary)
	if !ok {
		return child.String()
	}
	pc, pp := prec(b.Op), prec(parent)
	switch {
	case pc < pp:
		return "(" + b.String() + ")"
	case pc > pp:
		return b.String()
	case parent.IsInclusion():
		// Inclusion groups from the right: the left child of an
		// inclusion needs parens, the right child does not.
		if leftChild {
			return "(" + b.String() + ")"
		}
		return b.String()
	default:
		// +,-,& group from the left.
		if leftChild {
			return b.String()
		}
		return "(" + b.String() + ")"
	}
}

// Pretty renders the expression with the paper's operator symbols (⊃, σ, ι…).
func Pretty(e Expr) string {
	switch e := e.(type) {
	case Name:
		return e.Ident
	case Word:
		return strconv.Quote(e.W)
	case Prefix:
		return strconv.Quote(e.P) + "…"
	case Binary:
		l, r := Pretty(e.L), Pretty(e.R)
		if b, ok := e.L.(Binary); ok && (prec(b.Op) < prec(e.Op) || prec(b.Op) == prec(e.Op)) {
			l = "(" + l + ")"
		}
		if b, ok := e.R.(Binary); ok && prec(b.Op) < prec(e.Op) {
			r = "(" + r + ")"
		}
		return l + " " + e.Op.Pretty() + " " + r
	case Unary:
		if e.Op == OpInnermost {
			return "ι(" + Pretty(e.Arg) + ")"
		}
		return "ω(" + Pretty(e.Arg) + ")"
	case Select:
		switch e.Mode {
		case SelContains:
			return "σ" + strconv.Quote(e.W) + "(" + Pretty(e.Arg) + ")"
		case SelEquals:
			return "σ=" + strconv.Quote(e.W) + "(" + Pretty(e.Arg) + ")"
		default:
			return "σ^" + strconv.Quote(e.W) + "(" + Pretty(e.Arg) + ")"
		}
	}
	return e.String()
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	switch a := a.(type) {
	case Name:
		b, ok := b.(Name)
		return ok && a == b
	case Word:
		b, ok := b.(Word)
		return ok && a == b
	case Prefix:
		b, ok := b.(Prefix)
		return ok && a == b
	case Match:
		b, ok := b.(Match)
		return ok && a == b
	case Binary:
		bb, ok := b.(Binary)
		return ok && a.Op == bb.Op && Equal(a.L, bb.L) && Equal(a.R, bb.R)
	case Unary:
		bb, ok := b.(Unary)
		return ok && a.Op == bb.Op && Equal(a.Arg, bb.Arg)
	case Select:
		bb, ok := b.(Select)
		return ok && a.Mode == bb.Mode && a.W == bb.W && Equal(a.Arg, bb.Arg)
	case Near:
		bb, ok := b.(Near)
		return ok && a.K == bb.K && Equal(a.E, bb.E) && Equal(a.To, bb.To)
	case Freq:
		bb, ok := b.(Freq)
		return ok && a.W == bb.W && a.N == bb.N && Equal(a.Arg, bb.Arg)
	}
	return false
}

// Walk calls fn for e and every subexpression of e, parents first.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch e := e.(type) {
	case Binary:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case Unary:
		Walk(e.Arg, fn)
	case Select:
		Walk(e.Arg, fn)
	case Near:
		Walk(e.E, fn)
		Walk(e.To, fn)
	case Freq:
		Walk(e.Arg, fn)
	}
}

// Names returns the distinct region names referenced by e, in first-use order.
func Names(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	Walk(e, func(x Expr) {
		if n, ok := x.(Name); ok && !seen[n.Ident] {
			seen[n.Ident] = true
			out = append(out, n.Ident)
		}
	})
	return out
}

// Chain builds the right-grouped inclusion chain
// n1 op1 (n2 op2 (… σ…(nk))) used throughout the paper, e.g.
// Chain([]string{"Reference","Authors","Last_Name"}, []BinOp{OpIncluding, OpIncluding}, "Chang")
// is Reference ⊃ Authors ⊃ σ"Chang"(Last_Name). With w == "" no selection is
// applied to the last name.
func Chain(names []string, ops []BinOp, w string) Expr {
	if len(ops) != len(names)-1 {
		panic("algebra: Chain needs one fewer op than names")
	}
	var e Expr = Name{Ident: names[len(names)-1]}
	if w != "" {
		e = Select{Mode: SelContains, W: w, Arg: e}
	}
	for i := len(ops) - 1; i >= 0; i-- {
		e = Binary{Op: ops[i], L: Name{Ident: names[i]}, R: e}
	}
	return e
}

// UniformChain is Chain with the same operator between every pair of names.
func UniformChain(op BinOp, w string, names ...string) Expr {
	ops := make([]BinOp, len(names)-1)
	for i := range ops {
		ops[i] = op
	}
	return Chain(names, ops, w)
}
