package algebra

// Static cost model for region expressions. The paper's Definition 3.4
// orders expressions by efficiency using two observations: an expression
// with fewer inclusion operations is cheaper, and ⊃ is cheaper than the
// "significantly more expensive" ⊃d (whose evaluation iterates over nested
// layers and consults every other region index). The weights below encode
// that ordering; they drive EXPLAIN output and the ablation benchmarks, not
// correctness.
const (
	CostSetOp     = 1  // ∪, ∩, −
	CostSelect    = 2  // σ (word/region index lookups)
	CostNest      = 2  // ι, ω (single sweep)
	CostInclusion = 3  // ⊃, ⊂ (sorted sweep with range queries)
	CostDirect    = 12 // ⊃d, ⊂d (layered evaluation over all indices)
)

// Cost returns the static cost of e under the model above. For any RIG, the
// paper's "more efficient" relation (Definition 3.4) strictly decreases
// Cost: replacing ⊃d by ⊃ saves CostDirect−CostInclusion, and shortening a
// chain removes at least one inclusion operator.
func Cost(e Expr) int {
	total := 0
	Walk(e, func(x Expr) {
		switch x := x.(type) {
		case Binary:
			if x.Op.IsDirect() {
				total += CostDirect
			} else if x.Op.IsInclusion() {
				total += CostInclusion
			} else {
				total += CostSetOp
			}
		case Unary:
			total += CostNest
		case Select:
			total += CostSelect
		case Near:
			total += CostInclusion
		case Freq:
			total += CostSelect
		}
	})
	return total
}

// CostAtLeast reports whether Cost(e) >= min without always walking the
// whole expression: the recursion stops the moment the running total
// reaches min. The result-cache worthiness check runs on every operator
// node of every evaluation, so it must not pay a full subtree walk just to
// learn that the very first inclusion already clears the threshold.
func CostAtLeast(e Expr, min int) bool {
	return costUpTo(e, min) >= min
}

// costUpTo accumulates cost depth-first but returns as soon as the total
// reaches limit.
func costUpTo(e Expr, limit int) int {
	total := 0
	switch e := e.(type) {
	case Binary:
		if e.Op.IsDirect() {
			total = CostDirect
		} else if e.Op.IsInclusion() {
			total = CostInclusion
		} else {
			total = CostSetOp
		}
		if total < limit {
			total += costUpTo(e.L, limit-total)
		}
		if total < limit {
			total += costUpTo(e.R, limit-total)
		}
	case Unary:
		total = CostNest
		if total < limit {
			total += costUpTo(e.Arg, limit-total)
		}
	case Select:
		total = CostSelect
		if total < limit {
			total += costUpTo(e.Arg, limit-total)
		}
	case Near:
		total = CostInclusion
		if total < limit {
			total += costUpTo(e.E, limit-total)
		}
		if total < limit {
			total += costUpTo(e.To, limit-total)
		}
	case Freq:
		total = CostSelect
		if total < limit {
			total += costUpTo(e.Arg, limit-total)
		}
	}
	return total
}

// OpCounts summarises the operator mix of an expression, for EXPLAIN output.
type OpCounts struct {
	SetOps     int
	Selects    int
	Nests      int
	Inclusions int
	Directs    int
}

// CountOps tallies the operators in e.
func CountOps(e Expr) OpCounts {
	var c OpCounts
	Walk(e, func(x Expr) {
		switch x := x.(type) {
		case Binary:
			switch {
			case x.Op.IsDirect():
				c.Directs++
			case x.Op.IsInclusion():
				c.Inclusions++
			default:
				c.SetOps++
			}
		case Unary:
			c.Nests++
		case Select:
			c.Selects++
		}
	})
	return c
}
