package algebra_test

// Iterator-law property tests for the streaming evaluator (stream.go): the
// emitted sequence is canonical, exhaustion and Close are sticky, partially
// consumed pipelines release cleanly with no goroutine or buffer leaks, and
// optimizer rewrites — chain rewrites and operand reordering — never change
// the streamed result. The differential harness (internal/refeval/diff)
// covers streaming-vs-oracle agreement; these tests pin the iterator
// contract itself.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"qof/internal/algebra"
	"qof/internal/index"
	"qof/internal/optimizer"
	"qof/internal/qerr"
	"qof/internal/qgen"
	"qof/internal/region"
	"qof/internal/stats"
)

// streamFixture builds the BibTeX qgen domain under its richest index spec
// plus an expression generator, the same corpus the differential harness
// uses.
func streamFixture(t testing.TB, seed int64) (*qgen.Domain, *index.Instance, *qgen.ExprGen) {
	t.Helper()
	d := qgen.Domains(1994)[0]
	in, _, err := d.Cat.Grammar.BuildInstance(d.Doc, d.Specs[0])
	if err != nil {
		t.Fatal(err)
	}
	return d, in, qgen.ExprGenFor(d, in.Names(), seed)
}

// TestStreamCanonicalOrder: the streaming pipeline must emit regions in
// canonical order (strictly increasing under Before, hence duplicate-free)
// and the drained sequence must equal the materializing result. After
// natural exhaustion, Next stays exhausted with a nil error.
func TestStreamCanonicalOrder(t *testing.T) {
	_, in, gen := streamFixture(t, 401)
	ev := algebra.NewEvaluator(in)
	for trial := 0; trial < 300; trial++ {
		e := gen.Expr()
		want, werr := ev.Eval(e)
		it, serr := ev.Stream(context.Background(), e, nil, nil)
		if (serr != nil) != (werr != nil) {
			t.Fatalf("%s: stream error %v, eval error %v", e, serr, werr)
		}
		if serr != nil {
			continue
		}
		var got []region.Region
		for {
			r, ok, err := it.Next()
			if err != nil {
				t.Fatalf("%s: Next: %v", e, err)
			}
			if !ok {
				break
			}
			if n := len(got); n > 0 && !got[n-1].Before(r) {
				t.Fatalf("%s: emitted %v after %v — not canonical order", e, r, got[n-1])
			}
			got = append(got, r)
		}
		// Exhaustion is sticky.
		for i := 0; i < 3; i++ {
			if _, ok, err := it.Next(); ok || err != nil {
				t.Fatalf("%s: Next after exhaustion = (%v, %v), want (false, nil)", e, ok, err)
			}
		}
		it.Close()
		if !region.FromRegions(got).Equal(want) {
			t.Fatalf("%s: streamed %v, materialized %v", e, got, want)
		}
	}
}

// TestStreamCloseAfterPartial: Close after partial consumption must make
// the pipeline terminal (Next reports exhausted), be idempotent, and leak
// no goroutines — the streaming pipeline is synchronous pull, so the
// goroutine count must return to its baseline after every abandoned stream.
func TestStreamCloseAfterPartial(t *testing.T) {
	base := runtime.NumGoroutine()
	_, in, gen := streamFixture(t, 402)
	ev := algebra.NewEvaluator(in)
	for trial := 0; trial < 200; trial++ {
		e := gen.Expr()
		it, err := ev.Stream(context.Background(), e, nil, nil)
		if err != nil {
			continue
		}
		// Consume a prefix, then abandon.
		for i := 0; i < trial%5; i++ {
			if _, ok, err := it.Next(); err != nil || !ok {
				break
			}
		}
		it.Close()
		it.Close() // idempotent
		if _, ok, _ := it.Next(); ok {
			t.Fatalf("%s: Next after Close still emits", e)
		}
	}
	waitStreamGoroutines(t, base)
}

// waitStreamGoroutines polls until the goroutine count returns to within
// slack of base, the same leak accounting the engine cancellation tests use.
func waitStreamGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamOptimizerInvariance: rewriting an expression with the chain
// optimizer and reordering commutative operands by estimated cost must not
// change the streamed result — the optimizer picks among Theorem
// 3.6-equivalent forms, and the streaming operators must honor that for
// every operand order.
func TestStreamOptimizerInvariance(t *testing.T) {
	d, in, gen := streamFixture(t, 403)
	st := stats.Collect(in)
	ev := algebra.NewEvaluator(in)
	for trial := 0; trial < 200; trial++ {
		e := gen.Expr()
		want, err := ev.StreamEval(context.Background(), e, nil, nil)
		if err != nil {
			continue
		}
		opt, _ := optimizer.OptimizeExpr(e, d.Cat.RIG)
		for i, variant := range []algebra.Expr{
			optimizer.OrderOperands(e, st),
			opt,
			optimizer.OrderOperands(opt, st),
		} {
			got, err := ev.StreamEval(context.Background(), variant, nil, nil)
			if err != nil {
				t.Fatalf("%s: variant %d (%s): %v", e, i, variant, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s: variant %d (%s) streamed %v, original %v",
					e, i, variant, got, want)
			}
		}
	}
}

// TestStreamBudgetLaws: the streaming budget charge of a full drain is
// deterministic, a budget one region below it trips the drain with an error
// wrapping qerr.ErrBudgetExceeded, and a sufficient budget changes nothing
// about the result. (Totals deliberately differ from materializing in both
// directions — no memo and no short-circuit on one side, early operand
// abandonment on the other — so the law under test is the stream's own
// metering, not cross-executor equality; result equality is covered by the
// differential harness.)
func TestStreamBudgetLaws(t *testing.T) {
	_, in, gen := streamFixture(t, 404)
	ev := algebra.NewEvaluator(in)
	checked := 0
	for trial := 0; trial < 200 && checked < 50; trial++ {
		e := gen.Expr()
		want, err := ev.StreamEval(context.Background(), e, nil, nil)
		if err != nil {
			continue
		}
		sb := algebra.NewBudget(1 << 40)
		got, err := ev.StreamEval(context.Background(), e, nil, sb)
		if err != nil {
			t.Fatalf("%s: budgeted stream: %v", e, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: sufficient budget changed the result: %v vs %v", e, got, want)
		}
		sCharged := sb.Used()
		sb2 := algebra.NewBudget(1 << 40)
		if _, err := ev.StreamEval(context.Background(), e, nil, sb2); err != nil || sb2.Used() != sCharged {
			t.Fatalf("%s: charge not deterministic: %d then %d (err %v)", e, sCharged, sb2.Used(), err)
		}
		if sCharged <= 1 {
			continue // NewBudget(0) is unlimited; nothing to trip
		}
		// One region short must trip the streaming drain.
		if _, err := ev.StreamEval(context.Background(), e, nil, algebra.NewBudget(sCharged-1)); !errors.Is(err, qerr.ErrBudgetExceeded) {
			t.Fatalf("%s: budget of %d: err %v, want ErrBudgetExceeded (charge is %d)",
				e, sCharged-1, err, sCharged)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no expression exercised the budget laws")
	}
}

// TestStreamCancellation: a context canceled mid-drain surfaces as an error
// from Next, and the error is sticky.
func TestStreamCancellation(t *testing.T) {
	_, in, gen := streamFixture(t, 405)
	ev := algebra.NewEvaluator(in)
	canceled := 0
	for trial := 0; trial < 100 && canceled < 20; trial++ {
		e := gen.Expr()
		ctx, cancel := context.WithCancel(context.Background())
		it, err := ev.Stream(ctx, e, nil, nil)
		if err != nil {
			cancel()
			continue
		}
		cancel() // cancel before the first pull: the pipeline must notice
		_, ok, err := it.Next()
		if ok || err == nil {
			// Pipelines poll every streamPollStride emissions; the first
			// pull always polls, so a pre-canceled context must surface.
			t.Fatalf("%s: Next on canceled context = (%v, %v)", e, ok, err)
		}
		if _, ok2, err2 := it.Next(); ok2 || err2 == nil {
			t.Fatalf("%s: canceled pipeline resumed: (%v, %v)", e, ok2, err2)
		}
		it.Close()
		canceled++
	}
	if canceled == 0 {
		t.Fatal("no expression exercised cancellation")
	}
}
