package algebra

import (
	"qof/internal/stats"
)

// Cardinality-aware costing. The paper's Definition 3.4 compares rewrites
// by operator counts alone; with index-time statistics available the
// evaluator can do better: estimate how many regions each operator yields
// and order (or skip) operand evaluation accordingly. Estimates are upper
// bounds, so Card == 0 means provably empty — e.g. a σ_w selection whose
// word never occurs in the document — which the evaluator exploits to
// short-circuit ∩, ⊃ and ⊂ without touching the other operand.

// Estimate bounds the result of evaluating an expression against the
// instance the statistics describe.
type Estimate struct {
	// Card is an upper bound on the number of regions in the result;
	// 0 means the result is provably empty.
	Card int
	// Cost estimates the work of evaluating the expression, in the same
	// abstract units as the static Cost weights scaled by cardinality.
	Cost float64
}

// EstimateCost estimates the output cardinality and evaluation cost of e
// using per-instance statistics: σ_w selectivity from word frequency,
// inclusion output bounded by |R|, and set-operation bounds. st must be
// non-nil. Correctness never depends on the estimates — they order and
// prune work, and Card is a sound upper bound whenever every Name in e is
// indexed on the instance the statistics were collected from.
func EstimateCost(e Expr, st *stats.Stats) Estimate {
	switch e := e.(type) {
	case Name:
		return Estimate{Card: st.RegionCard(e.Ident), Cost: 1}
	case Word:
		return Estimate{Card: st.WordFreq(e.W), Cost: 1}
	case Prefix:
		// Binary search over the sistring array plus a scan of the hits;
		// the number of matches is unknown, so only the token total
		// bounds it.
		return Estimate{Card: st.TotalTokens, Cost: 1 + lg(st.TotalTokens)}
	case Match:
		// Suffix-array lookup; occurrences have distinct starts.
		return Estimate{Card: st.DocLen, Cost: 1 + lg(st.DocLen)}
	case Select:
		arg := EstimateCost(e.Arg, st)
		card := arg.Card
		if e.Mode == SelContains && st.WordFreq(e.W) == 0 {
			card = 0 // the word never occurs, so no region contains it
		}
		return Estimate{Card: card, Cost: arg.Cost + float64(arg.Card)*CostSelect}
	case Unary:
		arg := EstimateCost(e.Arg, st)
		return Estimate{Card: arg.Card, Cost: arg.Cost + float64(arg.Card)*CostNest}
	case Near:
		l := EstimateCost(e.E, st)
		r := EstimateCost(e.To, st)
		card := l.Card
		if r.Card == 0 {
			card = 0
		}
		return Estimate{Card: card, Cost: l.Cost + r.Cost + float64(l.Card+r.Card)*CostSelect}
	case Freq:
		arg := EstimateCost(e.Arg, st)
		card := arg.Card
		if e.N > 0 && st.WordFreq(e.W) < e.N {
			card = 0 // fewer total occurrences than the threshold
		}
		return Estimate{Card: card, Cost: arg.Cost + float64(arg.Card)*CostSelect}
	case Binary:
		l := EstimateCost(e.L, st)
		r := EstimateCost(e.R, st)
		var card int
		weight := float64(CostSetOp)
		switch e.Op {
		case OpUnion:
			card = l.Card + r.Card
		case OpIntersect:
			card = min(l.Card, r.Card)
		case OpDiff:
			card = l.Card
		default:
			// Inclusion output is a subset of the left operand and empty
			// when either side is.
			card = l.Card
			if r.Card == 0 {
				card = 0
			}
			if e.Op.IsDirect() {
				weight = CostDirect
			} else {
				weight = CostInclusion
			}
		}
		return Estimate{Card: card, Cost: l.Cost + r.Cost + float64(l.Card+r.Card)*weight}
	default:
		return Estimate{}
	}
}

// StreamEstimate adapts the materializing estimate of e to the streaming
// executor under a LIMIT: a consumer that stops after limit rows caps the
// output cardinality, and pays only the per-row pipeline cost for the rows
// it actually pulls. With no limit (or a limit the full answer doesn't
// reach) the estimate is the materializing one — a full drain does the same
// work. The cap models the executor's best case (candidates that all
// survive phase 2); like every estimate it steers nothing correctness
// depends on.
func StreamEstimate(e Expr, st *stats.Stats, limit int) Estimate {
	full := EstimateCost(e, st)
	if limit <= 0 || full.Card <= limit {
		return full
	}
	perRow := full.Cost / float64(full.Card)
	return Estimate{Card: limit, Cost: perRow * float64(limit)}
}

// lg is a branch-free log2 estimate for cost formulas.
func lg(n int) float64 {
	bits := 0
	for v := uint(n); v > 0; v >>= 1 {
		bits++
	}
	return float64(bits)
}
