package algebra

import (
	"math/rand"
	"testing"

	"qof/internal/index"
	"qof/internal/region"
	"qof/internal/text"
)

func TestNearBasic(t *testing.T) {
	in := fixture(t)
	// Authors regions near ("touching within 1 byte") their Editors
	// neighbour: in the fixture layout "... Chang EDITOR ..." the gap is
	// 1 space.
	got := evalStr(t, in, `Authors & near(Authors, Editors, 1)`)
	if got.Len() != 2 {
		t.Fatalf("near(Authors, Editors, 1) = %v", got)
	}
	// Distance 0 requires touching/overlap: the space separates them.
	if got := evalStr(t, in, `near(Authors, Editors, 0)`); !got.IsEmpty() {
		t.Fatalf("near 0 = %v", got)
	}
	// A name is near itself-containing regions (overlap → gap 0).
	if got := evalStr(t, in, `near(Name, Authors, 0)`); got.Len() != 2 {
		t.Fatalf("overlapping near = %v", got)
	}
	// Empty side.
	if got := evalStr(t, in, `near(Authors, Authors - Authors, 5)`); !got.IsEmpty() {
		t.Fatalf("near empty = %v", got)
	}
}

func TestNearMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	doc := text.NewDocument("n", "x")
	in := index.NewInstance(doc)
	_ = in
	for trial := 0; trial < 200; trial++ {
		E := randomSet(rng, 25, 60)
		To := randomSet(rng, 25, 60)
		k := rng.Intn(8)
		got := evalNear(E, To, k)
		want := E.Filter(func(r region.Region) bool {
			for _, s := range To.Regions() {
				if gap(r, s) <= k {
					return true
				}
			}
			return false
		})
		if !got.Equal(want) {
			t.Fatalf("trial %d k=%d: E=%v To=%v: got %v want %v", trial, k, E, To, got, want)
		}
	}
}

func randomSet(rng *rand.Rand, n, span int) region.Set {
	rs := make([]region.Region, 0, n)
	for i := 0; i < rng.Intn(n)+1; i++ {
		a := rng.Intn(span)
		b := a + rng.Intn(span-a) + 1
		rs = append(rs, region.Region{Start: a, End: b})
	}
	return region.FromRegions(rs)
}

func TestFreq(t *testing.T) {
	// "Corliss" appears twice in the second reference's line? Build a
	// dedicated doc: a region with repeated words.
	doc := text.NewDocument("f", "[ alpha beta alpha gamma alpha ] [ beta beta ]")
	in := index.NewInstance(doc)
	in.Define("Block", region.FromRegions([]region.Region{{Start: 0, End: 32}, {Start: 33, End: 46}}))
	ev := NewEvaluator(in)

	cases := []struct {
		src  string
		want int
	}{
		{`freq(Block, "alpha", 1)`, 1},
		{`freq(Block, "alpha", 3)`, 1},
		{`freq(Block, "alpha", 4)`, 0},
		{`freq(Block, "beta", 1)`, 2},
		{`freq(Block, "beta", 2)`, 1},
		{`freq(Block, "zzz", 1)`, 0},
		{`freq(Block, "alpha", 0)`, 2}, // n ≤ 0 keeps everything
	}
	for _, tc := range cases {
		got, err := ev.Eval(MustParse(tc.src))
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if got.Len() != tc.want {
			t.Errorf("%s = %v, want %d regions", tc.src, got, tc.want)
		}
	}
}

func TestExtendedParsePrintRoundTrip(t *testing.T) {
	for _, src := range []string{
		`near(Authors, Editors, 5)`,
		`freq(Abstract, "taylor", 2)`,
		`Reference > freq(Abstract, "taylor", 2)`,
		`near(A + B, innermost(C), 0)`,
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e.String(), err)
		}
		if !Equal(e, again) {
			t.Errorf("round trip %q -> %q", src, e.String())
		}
	}
	for _, bad := range []string{
		`near(A, B)`,
		`near(A, B, )`,
		`near(A, B, x)`,
		`near(A, B, -1)`,
		`freq(A, 3, "w")`,
		`freq(A, "w")`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestExtendedCostAndStats(t *testing.T) {
	e := MustParse(`near(A, freq(B, "w", 2), 10)`)
	if Cost(e) != CostInclusion+CostSelect {
		t.Errorf("Cost = %d", Cost(e))
	}
	in := fixture(t)
	ev := NewEvaluator(in)
	ev.Stats = &Stats{}
	if _, err := ev.Eval(MustParse(`near(Authors, Editors, 3)`)); err != nil {
		t.Fatal(err)
	}
	if ev.Stats.Ops != 1 {
		t.Errorf("stats = %+v", ev.Stats)
	}
}

func TestMatchTerm(t *testing.T) {
	in := fixture(t)
	got := evalStr(t, in, `Reference > match("EDITOR Alan")`)
	if got.Len() != 1 {
		t.Fatalf("match = %v", got)
	}
	// match round-trips through the printer.
	e := MustParse(`match("x y")`)
	if !Equal(e, MustParse(e.String())) {
		t.Error("round trip")
	}
	if got := evalStr(t, in, `match("zzz")`); !got.IsEmpty() {
		t.Errorf("absent = %v", got)
	}
}
