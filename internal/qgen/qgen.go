// Package qgen generates random well-typed XSQL queries and region-algebra
// expressions over a domain's RIG, plus the small random corpora they run
// against. Everything is seeded: the same seed reproduces the same corpus,
// the same queries and the same expressions, so a differential-test failure
// is replayable from its seed alone.
//
// "Well-typed" means queries always range over bound classes, the select
// variable is always bound by FROM, and path-variable names are unique
// within a path — the properties the compiler requires. Attribute paths are
// random walks on the RIG, so most follow real structure; walks resuming
// after a */? segment may leave it, which deliberately exercises dead-branch
// and full-scan handling.
package qgen

import (
	"fmt"
	"math/rand"

	"qof/internal/algebra"
	"qof/internal/xsql"
)

// QueryGen generates random XSQL queries over a domain.
type QueryGen struct {
	d      *Domain
	rng    *rand.Rand
	varSeq int
}

// NewQueryGen creates a seeded query generator.
func NewQueryGen(d *Domain, seed int64) *QueryGen {
	return &QueryGen{d: d, rng: rand.New(rand.NewSource(seed))}
}

// Query generates one random query.
func (g *QueryGen) Query() *xsql.Query {
	g.varSeq = 0
	q := &xsql.Query{}
	vars := []string{"r"}
	if g.rng.Float64() < 0.10 {
		vars = append(vars, "s")
	}
	for _, v := range vars {
		q.From = append(q.From, xsql.FromClause{
			Class: g.d.Classes[g.rng.Intn(len(g.d.Classes))],
			Var:   v,
		})
	}
	selVar := vars[g.rng.Intn(len(vars))]
	q.Select = xsql.Path{Var: selVar}
	if g.rng.Float64() < 0.30 {
		q.Select.Segs = g.path(g.classNT(q, selVar), 1+g.rng.Intn(3))
	}
	if g.rng.Float64() >= 0.10 {
		q.Where = g.cond(q, vars, 2)
	}
	return q
}

func (g *QueryGen) classNT(q *xsql.Query, v string) string {
	class, _ := q.ClassOf(v)
	nt, _ := g.d.Cat.ClassNT(class)
	return nt
}

// cond generates a boolean criterion of the given maximum combinator depth.
func (g *QueryGen) cond(q *xsql.Query, vars []string, depth int) xsql.Cond {
	if depth == 0 || g.rng.Float64() < 0.55 {
		return g.leaf(q, vars)
	}
	switch g.rng.Intn(3) {
	case 0:
		return xsql.And{L: g.cond(q, vars, depth-1), R: g.cond(q, vars, depth-1)}
	case 1:
		return xsql.Or{L: g.cond(q, vars, depth-1), R: g.cond(q, vars, depth-1)}
	default:
		return xsql.Not{C: g.cond(q, vars, depth-1)}
	}
}

// leaf generates one comparison.
func (g *QueryGen) leaf(q *xsql.Query, vars []string) xsql.Cond {
	v := vars[g.rng.Intn(len(vars))]
	p := xsql.Path{Var: v, Segs: g.path(g.classNT(q, v), g.rng.Intn(5))}
	switch r := g.rng.Float64(); {
	case r < 0.40:
		return xsql.CmpConst{Path: p, Word: g.word()}
	case r < 0.65:
		return xsql.CmpContains{Path: p, Word: g.word()}
	case r < 0.85:
		return xsql.CmpStarts{Path: p, Prefix: g.d.Prefixes[g.rng.Intn(len(g.d.Prefixes))]}
	default:
		w := vars[g.rng.Intn(len(vars))]
		return xsql.CmpPaths{
			L: p,
			R: xsql.Path{Var: w, Segs: g.path(g.classNT(q, w), g.rng.Intn(4))},
		}
	}
}

func (g *QueryGen) word() string { return g.d.Words[g.rng.Intn(len(g.d.Words))] }

// path random-walks the RIG from nt for up to steps segments. Each step is
// usually the next edge of the walk; occasionally a *X or ?X variable
// segment. After a variable segment the walk resumes from a random RIG node,
// so paths may or may not realign with real structure.
func (g *QueryGen) path(nt string, steps int) []xsql.Seg {
	var segs []xsql.Seg
	cur := nt
	nodes := g.d.Cat.RIG.Nodes()
	for i := 0; i < steps; i++ {
		r := g.rng.Float64()
		switch {
		case r < 0.08:
			g.varSeq++
			segs = append(segs, xsql.Seg{Star: true, Var: fmt.Sprintf("X%d", g.varSeq)})
			cur = nodes[g.rng.Intn(len(nodes))]
		case r < 0.14:
			g.varSeq++
			segs = append(segs, xsql.Seg{Any: true, Var: fmt.Sprintf("X%d", g.varSeq)})
			cur = nodes[g.rng.Intn(len(nodes))]
		default:
			succ := g.d.Cat.RIG.Successors(cur)
			if len(succ) == 0 {
				return segs
			}
			next := succ[g.rng.Intn(len(succ))]
			segs = append(segs, xsql.Seg{Attr: next})
			cur = next
		}
	}
	return segs
}

// ExprGen generates random region-algebra expressions over a set of region
// names (typically the indexed names of one instance).
type ExprGen struct {
	names     []string
	words     []string
	prefixes  []string
	fragments []string
	rng       *rand.Rand
}

// NewExprGen creates a seeded expression generator drawing Name leaves from
// names and string leaves from the given pools.
func NewExprGen(names, words, prefixes, fragments []string, seed int64) *ExprGen {
	return &ExprGen{
		names:     names,
		words:     words,
		prefixes:  prefixes,
		fragments: fragments,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// ExprGenFor creates an expression generator for a domain, drawing Name
// leaves from the given instance names.
func ExprGenFor(d *Domain, names []string, seed int64) *ExprGen {
	return NewExprGen(names, d.Words, d.Prefixes, d.Fragments, seed)
}

// Expr generates one random expression.
func (g *ExprGen) Expr() algebra.Expr { return g.expr(3) }

func (g *ExprGen) expr(depth int) algebra.Expr {
	if depth == 0 || g.rng.Float64() < 0.35 {
		return g.exprLeaf()
	}
	switch g.rng.Intn(11) {
	case 0:
		return algebra.Binary{Op: algebra.OpUnion, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 1:
		return algebra.Binary{Op: algebra.OpIntersect, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 2:
		return algebra.Binary{Op: algebra.OpDiff, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 3:
		return algebra.Binary{Op: algebra.OpIncluding, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 4:
		return algebra.Binary{Op: algebra.OpIncluded, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 5:
		return algebra.Binary{Op: algebra.OpDirIncluding, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 6:
		return algebra.Binary{Op: algebra.OpDirIncluded, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 7:
		op := algebra.OpInnermost
		if g.rng.Intn(2) == 1 {
			op = algebra.OpOutermost
		}
		return algebra.Unary{Op: op, Arg: g.expr(depth - 1)}
	case 8:
		mode := []algebra.SelMode{algebra.SelContains, algebra.SelEquals, algebra.SelPrefix}[g.rng.Intn(3)]
		return algebra.Select{Mode: mode, W: g.words[g.rng.Intn(len(g.words))], Arg: g.expr(depth - 1)}
	case 9:
		return algebra.Near{E: g.expr(depth - 1), To: g.expr(depth - 1), K: g.rng.Intn(21)}
	default:
		return algebra.Freq{Arg: g.expr(depth - 1), W: g.words[g.rng.Intn(len(g.words))], N: g.rng.Intn(4)}
	}
}

func (g *ExprGen) exprLeaf() algebra.Expr {
	switch r := g.rng.Float64(); {
	case r < 0.55:
		// Mostly indexed names; a rare unknown name checks error parity.
		if g.rng.Float64() < 0.03 || len(g.names) == 0 {
			return algebra.Name{Ident: "Qgen_Not_Indexed"}
		}
		return algebra.Name{Ident: g.names[g.rng.Intn(len(g.names))]}
	case r < 0.75:
		return algebra.Word{W: g.words[g.rng.Intn(len(g.words))]}
	case r < 0.88:
		return algebra.Prefix{P: g.prefixes[g.rng.Intn(len(g.prefixes))]}
	default:
		return algebra.Match{S: g.fragments[g.rng.Intn(len(g.fragments))]}
	}
}
