package qgen

import (
	"fmt"

	"qof/internal/bibtex"
	"qof/internal/compile"
	"qof/internal/grammar"
	"qof/internal/logs"
	"qof/internal/sgml"
	"qof/internal/text"
)

// Domain bundles everything the generators and the differential harness need
// for one structuring schema: a small random corpus, the catalog, word pools
// skewed towards values that actually occur in the corpus (so generated
// queries have non-empty answers often enough to be interesting), and a
// variety of index specifications covering full, partial and scoped
// indexing.
type Domain struct {
	Name    string
	Cat     *compile.Catalog
	Doc     *text.Document
	Classes []string // bound XSQL classes, primary class first

	// Words are constants for =/CONTAINS comparisons and σ selections;
	// Prefixes for STARTS; Fragments for match() leaves. Each pool mixes
	// hits and guaranteed misses.
	Words     []string
	Prefixes  []string
	Fragments []string

	// Specs are the indexing choices the harness cycles through.
	Specs []grammar.IndexSpec
}

// Domains builds the three paper domains with corpora derived from seed.
func Domains(seed int64) []*Domain {
	return []*Domain{BibTeX(seed), SGML(seed), Logs(seed)}
}

// BibTeX builds a small bibliography domain. Target shares are raised well
// above the paper's 1%/5% so that a ten-reference corpus still contains
// Chang rows to find.
func BibTeX(seed int64) *Domain {
	cfg := bibtex.DefaultConfig(10)
	cfg.Seed = seed
	cfg.TargetAuthorShare = 0.25
	cfg.TargetEditorShare = 0.35
	src, _ := bibtex.Generate(cfg)
	full := bibtex.Grammar().FullIndexSpec()
	return &Domain{
		Name:    "bibtex",
		Cat:     bibtex.Catalog(),
		Doc:     text.NewDocument(fmt.Sprintf("qgen-%d.bib", seed), src),
		Classes: []string{bibtex.ClassReferences},
		Words: []string{
			"Chang", "Corliss", "Griewank", "Tompa", "SIAM", "the",
			"system", "taylor", "term001", "1982", "Key000001", "Zebra",
		},
		Prefixes:  []string{"Ch", "Cor", "Key00", "term", "19", "zz"},
		Fragments: []string{"and", "AUTHOR", "\"", "Ch", "198", "@INCOLLECTION{", "never-there"},
		Specs: []grammar.IndexSpec{
			full,
			{Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName}},
			{Names: []string{bibtex.NTReference, bibtex.NTAuthors, bibtex.NTEditors, bibtex.NTLastName}},
			{Names: []string{bibtex.NTReference}},
			{
				Names:  []string{bibtex.NTReference, bibtex.NTAuthors},
				Scoped: []grammar.ScopedName{{Name: bibtex.NTLastName, Within: bibtex.NTAuthors}},
			},
		},
	}
}

// SGML builds a small nested-section domain; its cyclic RIG (Section →
// Section) exercises the self-nesting rewrite cases.
func SGML(seed int64) *Domain {
	cfg := sgml.DefaultConfig(3, 2)
	cfg.Seed = seed
	cfg.TargetShare = 0.3
	src, _ := sgml.Generate(cfg)
	full := sgml.Grammar().FullIndexSpec()
	return &Domain{
		Name:    "sgml",
		Cat:     sgml.Catalog(),
		Doc:     text.NewDocument(fmt.Sprintf("qgen-%d.sgml", seed), src),
		Classes: []string{sgml.ClassSections, sgml.ClassDocs},
		Words: []string{
			"needle", "section", "w01", "w42", "1", "2", "absent",
		},
		Prefixes:  []string{"need", "sec", "w0", "zz"},
		Fragments: []string{"<sec>", "<t>", "needle", "w1", "</p>", "never-there"},
		Specs: []grammar.IndexSpec{
			full,
			{Names: []string{sgml.NTDoc, sgml.NTSection, sgml.NTPara}},
			{Names: []string{sgml.NTSection, sgml.NTTitle}},
			{Names: []string{sgml.NTDoc, sgml.NTSection}},
		},
	}
}

// Logs builds a small server-log domain with raised error and target-program
// shares.
func Logs(seed int64) *Domain {
	cfg := logs.DefaultConfig(25)
	cfg.Seed = seed
	cfg.ErrorShare = 0.3
	cfg.TargetShare = 0.3
	src, _ := logs.Generate(cfg)
	full := logs.Grammar().FullIndexSpec()
	return &Domain{
		Name:    "logs",
		Cat:     logs.Catalog(),
		Doc:     text.NewDocument(fmt.Sprintf("qgen-%d.log", seed), src),
		Classes: []string{logs.ClassEntries},
		Words: []string{
			"nginx", "ERROR", "INFO", "cron", "sshd", "timeout", "cache",
			"host03", "absent",
		},
		Prefixes:  []string{"ngin", "ERR", "host", "zz"},
		Fragments: []string{"ERROR", "(", "1994-", "refused", "never-there"},
		Specs: []grammar.IndexSpec{
			full,
			{Names: []string{logs.NTEntry, logs.NTProgram, logs.NTLevel}},
			{Names: []string{logs.NTEntry, logs.NTMessage}},
			{Names: []string{logs.NTEntry}},
		},
	}
}
