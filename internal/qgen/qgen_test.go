package qgen_test

import (
	"testing"

	"qof/internal/algebra"
	"qof/internal/qgen"
	"qof/internal/xsql"
)

// TestDeterministic pins the replayability contract: the same seed yields
// byte-identical corpora and query/expression streams.
func TestDeterministic(t *testing.T) {
	a := qgen.Domains(42)
	b := qgen.Domains(42)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("Domains: got %d and %d domains, want 3", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("domain %d: %q vs %q", i, a[i].Name, b[i].Name)
		}
		if a[i].Doc.Content() != b[i].Doc.Content() {
			t.Errorf("domain %s: corpora differ under same seed", a[i].Name)
		}
		ga := qgen.NewQueryGen(a[i], 7)
		gb := qgen.NewQueryGen(b[i], 7)
		for k := 0; k < 100; k++ {
			qa, qb := ga.Query().String(), gb.Query().String()
			if qa != qb {
				t.Fatalf("domain %s query %d: %q vs %q", a[i].Name, k, qa, qb)
			}
		}
		names := []string{"Reference", "Section", "Entry"}
		ea := qgen.ExprGenFor(a[i], names, 7)
		eb := qgen.ExprGenFor(b[i], names, 7)
		for k := 0; k < 100; k++ {
			xa, xb := ea.Expr().String(), eb.Expr().String()
			if xa != xb {
				t.Fatalf("domain %s expr %d: %q vs %q", a[i].Name, k, xa, xb)
			}
		}
	}
}

// TestQueriesRoundTrip checks that generated queries are well-formed: they
// render to text the parser accepts and the round trip is a fixed point —
// the property the engine's plan cache (keyed by query text) relies on.
func TestQueriesRoundTrip(t *testing.T) {
	for _, d := range qgen.Domains(13) {
		g := qgen.NewQueryGen(d, 99)
		for k := 0; k < 200; k++ {
			q := g.Query()
			src := q.String()
			back, err := xsql.Parse(src)
			if err != nil {
				t.Fatalf("%s: generated query does not parse: %q: %v", d.Name, src, err)
			}
			if back.String() != src {
				t.Fatalf("%s: round trip changed the query:\n  %q\n  %q", d.Name, src, back.String())
			}
			if _, ok := q.ClassOf(q.Select.Var); !ok {
				t.Fatalf("%s: select variable %q is unbound in %q", d.Name, q.Select.Var, src)
			}
		}
	}
}

// TestExprsRoundTrip checks the same for algebra expressions.
func TestExprsRoundTrip(t *testing.T) {
	for _, d := range qgen.Domains(13) {
		g := qgen.ExprGenFor(d, []string{"A", "B"}, 99)
		for k := 0; k < 200; k++ {
			e := g.Expr()
			src := e.String()
			back, err := algebra.Parse(src)
			if err != nil {
				t.Fatalf("%s: generated expression does not parse: %q: %v", d.Name, src, err)
			}
			if !algebra.Equal(e, back) {
				t.Fatalf("%s: round trip changed the expression: %q", d.Name, src)
			}
		}
	}
}

// TestSpecsAreBuildable checks every domain spec against its corpus.
func TestSpecsAreBuildable(t *testing.T) {
	for _, d := range qgen.Domains(5) {
		for i, spec := range d.Specs {
			if _, _, err := d.Cat.Grammar.BuildInstance(d.Doc, spec); err != nil {
				t.Errorf("%s spec %d: BuildInstance: %v", d.Name, i, err)
			}
		}
	}
}
