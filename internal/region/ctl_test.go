package region

import (
	"errors"
	"math/rand"
	"testing"
)

// randomCtlSets builds two overlapping region sets large enough that every
// kernel's sweep crosses several poll strides.
func randomCtlSets(t *testing.T, n int, seed int64) (Set, Set) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func() Set {
		rs := make([]Region, n)
		for i := range rs {
			start := rng.Intn(10 * n)
			rs[i] = Region{Start: start, End: start + 1 + rng.Intn(50)}
		}
		return FromRegions(rs)
	}
	return mk(), mk()
}

func TestCtlNilCheckerMatchesPlain(t *testing.T) {
	R, S := randomCtlSets(t, 3000, 1)
	if got, err := R.IncludingCtl(S, nil); err != nil || !got.Equal(R.Including(S)) {
		t.Fatalf("IncludingCtl(nil) diverges (err=%v)", err)
	}
	if got, err := R.IncludedCtl(S, nil); err != nil || !got.Equal(R.Included(S)) {
		t.Fatalf("IncludedCtl(nil) diverges (err=%v)", err)
	}
	u := NewUniverse(R, S)
	if got, err := u.DirectlyIncludingCtl(R, S, nil); err != nil || !got.Equal(u.DirectlyIncluding(R, S)) {
		t.Fatalf("DirectlyIncludingCtl(nil) diverges (err=%v)", err)
	}
	if got, err := u.DirectlyIncludedCtl(R, S, nil); err != nil || !got.Equal(u.DirectlyIncluded(R, S)) {
		t.Fatalf("DirectlyIncludedCtl(nil) diverges (err=%v)", err)
	}
	keep := func(r Region) bool { return r.Len() > 10 }
	got, err := R.FilterCtl(keep, nil)
	if err != nil || !got.Equal(R.Filter(keep)) {
		t.Fatalf("FilterCtl(nil) diverges (err=%v)", err)
	}
}

func TestCtlAborts(t *testing.T) {
	R, S := randomCtlSets(t, 100, 2)
	u := NewUniverse(R, S)
	boom := errors.New("boom")
	fail := func() error { return boom }
	kernels := map[string]func() (Set, error){
		"IncludingCtl":         func() (Set, error) { return R.IncludingCtl(S, fail) },
		"IncludedCtl":          func() (Set, error) { return R.IncludedCtl(S, fail) },
		"DirectlyIncludingCtl": func() (Set, error) { return u.DirectlyIncludingCtl(R, S, fail) },
		"DirectlyIncludedCtl":  func() (Set, error) { return u.DirectlyIncludedCtl(R, S, fail) },
		"FilterCtl":            func() (Set, error) { return R.FilterCtl(func(Region) bool { return true }, fail) },
	}
	for name, k := range kernels {
		got, err := k()
		if !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want boom", name, err)
		}
		if !got.IsEmpty() {
			t.Errorf("%s: aborted kernel returned %d regions, want none", name, got.Len())
		}
	}
}

// TestPollStride proves the poll cadence: a counting checker is consulted on
// iteration 0 and then once per stride, so a sweep over n regions polls
// ceil(n/pollStride) times — not n times (hot-path cost) and not once
// (cancellation latency).
func TestPollStride(t *testing.T) {
	n := 3*pollStride + 10
	rs := make([]Region, n)
	for i := range rs {
		rs[i] = Region{Start: 2 * i, End: 2*i + 1}
	}
	s := FromRegions(rs)
	polls := 0
	count := func() error { polls++; return nil }
	if _, err := s.FilterCtl(func(Region) bool { return true }, count); err != nil {
		t.Fatal(err)
	}
	if want := 4; polls != want { // iterations 0, 1024, 2048, 3072
		t.Fatalf("polled %d times over %d regions, want %d", polls, n, want)
	}
}

// TestCtlAbortMidSweep trips the checker only after the first stride,
// proving the abort also works from the middle of a sweep (the pooled
// scratch buffers must be released on that path; poolescape in qoflint
// checks the release ordering statically, this checks behavior).
func TestCtlAbortMidSweep(t *testing.T) {
	R, S := randomCtlSets(t, 3*pollStride, 3)
	boom := errors.New("late boom")
	calls := 0
	late := func() error {
		calls++
		if calls >= 2 {
			return boom
		}
		return nil
	}
	if _, err := R.IncludingCtl(S, late); !errors.Is(err, boom) {
		t.Fatalf("IncludingCtl: err = %v, want late boom", err)
	}
	calls = 0
	if _, err := R.IncludedCtl(S, late); !errors.Is(err, boom) {
		t.Fatalf("IncludedCtl: err = %v, want late boom", err)
	}
	// The sweep is reusable after an abort: the next call sees fresh
	// pooled buffers and computes the full answer.
	got, err := R.IncludingCtl(S, nil)
	if err != nil || !got.Equal(R.Including(S)) {
		t.Fatalf("IncludingCtl after abort diverges (err=%v)", err)
	}
}
