package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(pairs ...int) Set {
	if len(pairs)%2 != 0 {
		panic("mk: odd number of endpoints")
	}
	rs := make([]Region, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		rs = append(rs, Region{Start: pairs[i], End: pairs[i+1]})
	}
	return FromRegions(rs)
}

func TestRegionPredicates(t *testing.T) {
	a := Region{0, 10}
	b := Region{2, 5}
	c := Region{4, 12}
	if !a.Includes(b) || b.Includes(a) {
		t.Error("Includes")
	}
	if !a.Includes(a) {
		t.Error("Includes must be reflexive")
	}
	if a.StrictlyIncludes(a) {
		t.Error("StrictlyIncludes must be irreflexive")
	}
	if !a.StrictlyIncludes(b) {
		t.Error("StrictlyIncludes")
	}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Error("Overlaps")
	}
	if a.Overlaps(b) {
		t.Error("nested regions do not Overlap")
	}
	if (Region{0, 2}).Overlaps(Region{2, 4}) {
		t.Error("touching regions do not Overlap")
	}
	if a.Len() != 10 {
		t.Error("Len")
	}
	if a.String() != "[0,10)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestBeforeOrder(t *testing.T) {
	// Outer regions sort before the regions they include.
	outer := Region{0, 10}
	inner := Region{0, 5}
	if !outer.Before(inner) || inner.Before(outer) {
		t.Error("same-start order must put larger region first")
	}
	if !(Region{1, 2}).Before(Region{3, 4}) {
		t.Error("start order")
	}
}

func TestFromRegionsSortsAndDedupes(t *testing.T) {
	s := mk(5, 9, 0, 10, 5, 9, 0, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	want := []Region{{0, 10}, {0, 3}, {5, 9}}
	for i, r := range want {
		if s.At(i) != r {
			t.Errorf("At(%d) = %v, want %v", i, s.At(i), r)
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := mk(0, 10, 5, 9)
	if s.IsEmpty() || !Empty.IsEmpty() {
		t.Error("IsEmpty")
	}
	if !s.Contains(Region{5, 9}) || s.Contains(Region{5, 8}) {
		t.Error("Contains")
	}
	if !s.Equal(mk(5, 9, 0, 10)) || s.Equal(mk(0, 10)) {
		t.Error("Equal")
	}
	if s.String() != "{[0,10) [5,9)}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSetOps(t *testing.T) {
	a := mk(0, 10, 5, 9, 20, 30)
	b := mk(5, 9, 40, 50)
	if got := a.Union(b); !got.Equal(mk(0, 10, 5, 9, 20, 30, 40, 50)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(mk(5, 9)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(mk(0, 10, 20, 30)) {
		t.Errorf("Diff = %v", got)
	}
	if got := Empty.Union(a); !got.Equal(a) {
		t.Errorf("Empty.Union = %v", got)
	}
	if got := a.Diff(Empty); !got.Equal(a) {
		t.Errorf("Diff Empty = %v", got)
	}
	if got := a.Intersect(Empty); !got.IsEmpty() {
		t.Errorf("Intersect Empty = %v", got)
	}
}

func TestFilter(t *testing.T) {
	a := mk(0, 10, 5, 9, 20, 30)
	got := a.Filter(func(r Region) bool { return r.Len() > 4 })
	if !got.Equal(mk(0, 10, 20, 30)) {
		t.Errorf("Filter = %v", got)
	}
}

func TestInnermostOutermost(t *testing.T) {
	// Nested: [0,100) ⊃ [10,40) ⊃ [20,30); plus disjoint [50,60).
	s := mk(0, 100, 10, 40, 20, 30, 50, 60)
	if got := s.Outermost(); !got.Equal(mk(0, 100)) {
		t.Errorf("Outermost = %v", got)
	}
	if got := s.Innermost(); !got.Equal(mk(20, 30, 50, 60)) {
		t.Errorf("Innermost = %v", got)
	}
	if !Empty.Innermost().IsEmpty() || !Empty.Outermost().IsEmpty() {
		t.Error("empty set")
	}
}

func TestInnermostOutermostOverlapping(t *testing.T) {
	// Partially overlapping regions are both minimal and maximal.
	s := mk(0, 10, 5, 15)
	if got := s.Outermost(); !got.Equal(s) {
		t.Errorf("Outermost = %v", got)
	}
	if got := s.Innermost(); !got.Equal(s) {
		t.Errorf("Innermost = %v", got)
	}
}

func TestProperlyNested(t *testing.T) {
	if !mk(0, 100, 10, 40, 20, 30, 50, 60).ProperlyNested() {
		t.Error("nested set misreported")
	}
	if mk(0, 10, 5, 15).ProperlyNested() {
		t.Error("overlapping set misreported")
	}
	if !Empty.ProperlyNested() {
		t.Error("empty set is nested")
	}
	if !mk(0, 5, 5, 10).ProperlyNested() {
		t.Error("touching regions are nested")
	}
	// Same-start regions nest.
	if !mk(0, 10, 0, 5).ProperlyNested() {
		t.Error("same-start nesting misreported")
	}
}

func TestIncludingBasic(t *testing.T) {
	refs := mk(0, 100, 200, 300)
	names := mk(10, 20, 350, 360)
	if got := refs.Including(names); !got.Equal(mk(0, 100)) {
		t.Errorf("Including = %v", got)
	}
	if got := names.Included(refs); !got.Equal(mk(10, 20)) {
		t.Errorf("Included = %v", got)
	}
	if !Empty.Including(names).IsEmpty() || !refs.Including(Empty).IsEmpty() {
		t.Error("empty cases")
	}
	// Inclusion is strict: a set never includes itself region-by-region.
	if got := refs.Including(refs); !got.IsEmpty() {
		t.Errorf("self Including = %v, want empty (strict)", got)
	}
	if got := refs.Included(refs); !got.IsEmpty() {
		t.Errorf("self Included = %v, want empty (strict)", got)
	}
	// Nested same-set regions do relate.
	nested := mk(0, 10, 2, 8)
	if got := nested.Including(nested); !got.Equal(mk(0, 10)) {
		t.Errorf("nested self Including = %v", got)
	}
	if got := nested.Included(nested); !got.Equal(mk(2, 8)) {
		t.Errorf("nested self Included = %v", got)
	}
}

func TestDirectInclusionPaperExample(t *testing.T) {
	// Mimics the BIBTEX structure: Reference ⊃ Authors ⊃ Name ⊃ Last_Name.
	ref := mk(0, 100)
	authors := mk(10, 60)
	name := mk(20, 50)
	last := mk(35, 45)
	u := NewUniverse(ref, authors, name, last)
	if !u.ProperlyNested() {
		t.Fatal("universe should be properly nested")
	}
	// Direct inclusion holds only along parent edges.
	if got := u.DirectlyIncluding(authors, name); !got.Equal(authors) {
		t.Errorf("Authors ⊃d Name = %v", got)
	}
	if got := u.DirectlyIncluding(ref, name); !got.IsEmpty() {
		t.Errorf("Reference ⊃d Name = %v, want empty (Authors is between)", got)
	}
	if got := u.DirectlyIncluding(ref, authors); !got.Equal(ref) {
		t.Errorf("Reference ⊃d Authors = %v", got)
	}
	// Plain inclusion holds transitively.
	if got := ref.Including(last); !got.Equal(ref) {
		t.Errorf("Reference ⊃ Last_Name = %v", got)
	}
	// Dual.
	if got := u.DirectlyIncluded(name, authors); !got.Equal(name) {
		t.Errorf("Name ⊂d Authors = %v", got)
	}
	if got := u.DirectlyIncluded(name, ref); !got.IsEmpty() {
		t.Errorf("Name ⊂d Reference = %v, want empty", got)
	}
}

func TestUniverseParent(t *testing.T) {
	u := NewUniverse(mk(0, 100, 10, 40, 20, 30, 50, 60))
	p, ok := u.Parent(Region{20, 30})
	if !ok || p != (Region{10, 40}) {
		t.Errorf("Parent([20,30)) = %v,%v", p, ok)
	}
	if _, ok := u.Parent(Region{0, 100}); ok {
		t.Error("root has no parent")
	}
	if _, ok := u.Parent(Region{999, 1000}); ok {
		t.Error("unknown region has no parent")
	}
}

func TestBetween(t *testing.T) {
	u := NewUniverse(mk(0, 100, 10, 40, 20, 30))
	if !u.Between(Region{0, 100}, Region{20, 30}) {
		t.Error("Between should see [10,40)")
	}
	if u.Between(Region{10, 40}, Region{20, 30}) {
		t.Error("nothing between parent and child")
	}
	if u.Between(Region{20, 30}, Region{0, 100}) {
		t.Error("Between requires inclusion")
	}
}

// randomSets generates n random regions split across k instance sets over
// positions [0, span). It intentionally produces overlapping regions.
func randomSets(rng *rand.Rand, n, k, span int) []Set {
	groups := make([][]Region, k)
	for i := 0; i < n; i++ {
		a := rng.Intn(span)
		b := rng.Intn(span)
		if a > b {
			a, b = b, a
		}
		g := rng.Intn(k)
		groups[g] = append(groups[g], Region{a, b + 1})
	}
	sets := make([]Set, k)
	for i := range sets {
		sets[i] = FromRegions(groups[i])
	}
	return sets
}

// randomNestedSets generates properly nested instance sets by recursively
// subdividing [0, span).
func randomNestedSets(rng *rand.Rand, k, span int) []Set {
	groups := make([][]Region, k)
	var subdivide func(lo, hi, depth int)
	subdivide = func(lo, hi, depth int) {
		if hi-lo < 2 || depth > 6 {
			return
		}
		g := rng.Intn(k)
		groups[g] = append(groups[g], Region{lo, hi})
		mid := lo + 1 + rng.Intn(hi-lo-1)
		if rng.Intn(3) > 0 {
			subdivide(lo, mid, depth+1)
		}
		if rng.Intn(3) > 0 {
			subdivide(mid, hi, depth+1)
		}
	}
	subdivide(0, span, 0)
	sets := make([]Set, k)
	for i := range sets {
		sets[i] = FromRegions(groups[i])
	}
	return sets
}

func TestIncludingMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		sets := randomSets(rng, 2+rng.Intn(30), 2, 40)
		R, S := sets[0], sets[1]
		if got, want := R.Including(S), NaiveIncluding(R, S); !got.Equal(want) {
			t.Fatalf("trial %d: R=%v S=%v: Including=%v want %v", trial, R, S, got, want)
		}
		if got, want := R.Included(S), NaiveIncluded(R, S); !got.Equal(want) {
			t.Fatalf("trial %d: R=%v S=%v: Included=%v want %v", trial, R, S, got, want)
		}
		// Sets sharing regions stress the strictness corner cases.
		U := R.Union(S)
		if got, want := U.Including(U), NaiveIncluding(U, U); !got.Equal(want) {
			t.Fatalf("trial %d self: U=%v: Including=%v want %v", trial, U, got, want)
		}
		if got, want := U.Included(U), NaiveIncluded(U, U); !got.Equal(want) {
			t.Fatalf("trial %d self: U=%v: Included=%v want %v", trial, U, got, want)
		}
	}
}

func TestInnermostOutermostMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		sets := randomSets(rng, 2+rng.Intn(30), 1, 40)
		R := sets[0]
		if got, want := R.Innermost(), NaiveInnermost(R); !got.Equal(want) {
			t.Fatalf("trial %d: R=%v: Innermost=%v want %v", trial, R, got, want)
		}
		if got, want := R.Outermost(), NaiveOutermost(R); !got.Equal(want) {
			t.Fatalf("trial %d: R=%v: Outermost=%v want %v", trial, R, got, want)
		}
	}
}

func TestDirectInclusionMatchesNaiveOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		sets := randomSets(rng, 3+rng.Intn(25), 3, 30)
		R, S := sets[0], sets[1]
		u := NewUniverse(sets...)
		all := u.All()
		if got, want := u.DirectlyIncluding(R, S), NaiveDirectlyIncluding(R, S, all); !got.Equal(want) {
			t.Fatalf("trial %d: R=%v S=%v U=%v: ⊃d=%v want %v", trial, R, S, all, got, want)
		}
		if got, want := u.DirectlyIncluded(R, S), NaiveDirectlyIncluded(R, S, all); !got.Equal(want) {
			t.Fatalf("trial %d: R=%v S=%v U=%v: ⊂d=%v want %v", trial, R, S, all, got, want)
		}
	}
}

func TestDirectInclusionMatchesNaiveNested(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		sets := randomNestedSets(rng, 3, 64)
		R, S := sets[0], sets[1]
		u := NewUniverse(sets...)
		if !u.ProperlyNested() {
			t.Fatalf("trial %d: generator produced overlap", trial)
		}
		all := u.All()
		if got, want := u.DirectlyIncluding(R, S), NaiveDirectlyIncluding(R, S, all); !got.Equal(want) {
			t.Fatalf("trial %d: R=%v S=%v U=%v: ⊃d=%v want %v", trial, R, S, all, got, want)
		}
		if got, want := u.DirectlyIncluded(R, S), NaiveDirectlyIncluded(R, S, all); !got.Equal(want) {
			t.Fatalf("trial %d: R=%v S=%v U=%v: ⊂d=%v want %v", trial, R, S, all, got, want)
		}
	}
}

func TestSetAlgebraLaws(t *testing.T) {
	// Property-based checks of the boolean-algebra laws over region sets.
	gen := func(vals []int) Set {
		rs := make([]Region, 0, len(vals)/2)
		for i := 0; i+1 < len(vals); i += 2 {
			a := abs(vals[i]) % 50
			b := abs(vals[i+1]) % 50
			if a > b {
				a, b = b, a
			}
			rs = append(rs, Region{a, b + 1})
		}
		return FromRegions(rs)
	}
	f := func(xs, ys, zs []int) bool {
		a, b, c := gen(xs), gen(ys), gen(zs)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		if !a.Intersect(b.Intersect(c)).Equal(a.Intersect(b).Intersect(c)) {
			return false
		}
		// De Morgan relative to a: a − (b ∪ c) = (a − b) ∩ (a − c).
		if !a.Diff(b.Union(c)).Equal(a.Diff(b).Intersect(a.Diff(c))) {
			return false
		}
		if !a.Diff(b.Intersect(c)).Equal(a.Diff(b).Union(a.Diff(c))) {
			return false
		}
		// Idempotence and identity.
		if !a.Union(a).Equal(a) || !a.Intersect(a).Equal(a) || !a.Diff(a).IsEmpty() {
			return false
		}
		// Distribution of ⊃ over ∪ in the left argument.
		if !a.Union(b).Including(c).Equal(a.Including(c).Union(b.Including(c))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestMinTable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		rs := make([]Region, n)
		for i := range rs {
			rs[i] = Region{i, i + 1 + rng.Intn(100)}
		}
		tab := newMinTable(rs)
		for q := 0; q < 50; q++ {
			lo := rng.Intn(n)
			hi := lo + 1 + rng.Intn(n-lo)
			want := rs[lo].End
			for i := lo; i < hi; i++ {
				if rs[i].End < want {
					want = rs[i].End
				}
			}
			if got := tab.min(lo, hi); got != want {
				t.Fatalf("min(%d,%d) = %d, want %d", lo, hi, got, want)
			}
		}
	}
}
