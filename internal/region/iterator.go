package region

// Pull-based streaming kernels for the region algebra. Every operator of the
// materializing Set API has an iterator counterpart here that consumes its
// operands lazily and emits regions in the canonical set order, so a
// consumer that stops early (a LIMIT, a budget, a cancellation) never pays
// for the part of the stream it does not read. The materializing kernels
// remain the reference implementations; the streaming executor is verified
// against them differentially (see docs/STREAMING.md).
//
// Iterator contract:
//
//   - Output order is the canonical set order (Start ascending, End
//     descending) and duplicate-free, provided the inputs are. Streams are
//     therefore directly collectible into a Set without re-sorting.
//   - Next returns (r, true, nil) for each region; after the stream ends it
//     returns (Region{}, false, err) where err is non-nil only when the
//     stream aborted (cancellation, budget). The terminal outcome is
//     sticky: every later Next returns it again.
//   - Close releases internal buffers and closes child iterators. It is
//     idempotent; Next after Close reports exhaustion. Closing does not
//     consume the remainder of the inputs.
//   - Iterators are single-consumer and not safe for concurrent use.

// Iterator is a pull-based stream of regions in canonical set order.
type Iterator interface {
	Next() (Region, bool, error)
	Close()
}

// Iter returns an iterator over the set's regions. Sets are immutable, so
// the iterator never invalidates.
func (s Set) Iter() Iterator { return &sliceIter{rs: s.regions} }

type sliceIter struct {
	rs   []Region
	done bool
}

func (it *sliceIter) Next() (Region, bool, error) {
	if it.done || len(it.rs) == 0 {
		it.done = true
		return Region{}, false, nil
	}
	r := it.rs[0]
	it.rs = it.rs[1:]
	return r, true, nil
}

func (it *sliceIter) Close() { it.rs, it.done = nil, true }

// Materialize drains the iterator into a Set and closes it. The iterator
// contract guarantees canonical order, so no re-sorting is needed. On error
// the partial output is discarded, mirroring the *Ctl kernels.
func Materialize(it Iterator) (Set, error) {
	defer it.Close()
	var out []Region
	for {
		r, ok, err := it.Next()
		if err != nil {
			return Empty, err
		}
		if !ok {
			return trimmed(out), nil
		}
		out = append(out, r)
	}
}

// cursor wraps an iterator with one-region lookahead, the bounded lookahead
// every merge iterator needs.
type cursor struct {
	it     Iterator
	cur    Region
	ok     bool
	err    error
	loaded bool
}

// head returns the current region without consuming it.
func (c *cursor) head() (Region, bool, error) {
	if !c.loaded {
		c.cur, c.ok, c.err = c.it.Next()
		c.loaded = true
	}
	return c.cur, c.ok, c.err
}

// advance consumes the current region; the next head() pulls a fresh one.
func (c *cursor) advance() { c.loaded = false }

func (c *cursor) close() {
	if c.it != nil {
		c.it.Close()
	}
}

// term is the shared terminal-state machinery of the composite iterators:
// once done, Next keeps returning the same outcome.
type term struct {
	done bool
	err  error
}

func (t *term) finish() (Region, bool, error) {
	t.done = true
	return Region{}, false, nil
}

func (t *term) fail(err error) (Region, bool, error) {
	t.done, t.err = true, err
	return Region{}, false, err
}

func (t *term) terminal() (Region, bool, error) { return Region{}, false, t.err }

// UnionIter streams a ∪ b: a two-pointer sorted merge emitting equal heads
// once.
func UnionIter(a, b Iterator) Iterator {
	return &unionIter{a: cursor{it: a}, b: cursor{it: b}}
}

type unionIter struct {
	term
	a, b cursor
}

func (it *unionIter) Next() (Region, bool, error) {
	if it.done {
		return it.terminal()
	}
	ra, oka, err := it.a.head()
	if err != nil {
		return it.fail(err)
	}
	rb, okb, err := it.b.head()
	if err != nil {
		return it.fail(err)
	}
	switch {
	case !oka && !okb:
		return it.finish()
	case !okb || (oka && ra.Before(rb)):
		it.a.advance()
		return ra, true, nil
	case !oka || rb.Before(ra):
		it.b.advance()
		return rb, true, nil
	default: // equal heads: emit once
		it.a.advance()
		it.b.advance()
		return ra, true, nil
	}
}

func (it *unionIter) Close() {
	it.done = true
	it.a.close()
	it.b.close()
}

// IntersectIter streams a ∩ b.
func IntersectIter(a, b Iterator) Iterator {
	return &intersectIter{a: cursor{it: a}, b: cursor{it: b}}
}

type intersectIter struct {
	term
	a, b cursor
}

func (it *intersectIter) Next() (Region, bool, error) {
	if it.done {
		return it.terminal()
	}
	for {
		ra, oka, err := it.a.head()
		if err != nil {
			return it.fail(err)
		}
		if !oka {
			return it.finish()
		}
		rb, okb, err := it.b.head()
		if err != nil {
			return it.fail(err)
		}
		if !okb {
			return it.finish()
		}
		switch {
		case ra == rb:
			it.a.advance()
			it.b.advance()
			return ra, true, nil
		case ra.Before(rb):
			it.a.advance()
		default:
			it.b.advance()
		}
	}
}

func (it *intersectIter) Close() {
	it.done = true
	it.a.close()
	it.b.close()
}

// DiffIter streams a − b.
func DiffIter(a, b Iterator) Iterator {
	return &diffIter{a: cursor{it: a}, b: cursor{it: b}}
}

type diffIter struct {
	term
	a, b cursor
}

func (it *diffIter) Next() (Region, bool, error) {
	if it.done {
		return it.terminal()
	}
	for {
		ra, oka, err := it.a.head()
		if err != nil {
			return it.fail(err)
		}
		if !oka {
			return it.finish()
		}
		rb, okb, err := it.b.head()
		if err != nil {
			return it.fail(err)
		}
		if !okb {
			it.a.advance()
			return ra, true, nil
		}
		switch {
		case ra == rb:
			it.a.advance()
			it.b.advance()
		case ra.Before(rb):
			it.a.advance()
			return ra, true, nil
		default:
			it.b.advance()
		}
	}
}

func (it *diffIter) Close() {
	it.done = true
	it.a.close()
	it.b.close()
}

// FilterIter streams the regions of a satisfying keep.
func FilterIter(a Iterator, keep func(Region) bool) Iterator {
	return &filterIter{a: cursor{it: a}, keep: keep}
}

type filterIter struct {
	term
	a    cursor
	keep func(Region) bool
}

func (it *filterIter) Next() (Region, bool, error) {
	if it.done {
		return it.terminal()
	}
	for {
		r, ok, err := it.a.head()
		if err != nil {
			return it.fail(err)
		}
		if !ok {
			return it.finish()
		}
		it.a.advance()
		if it.keep(r) {
			return r, true, nil
		}
	}
}

func (it *filterIter) Close() {
	it.done = true
	it.a.close()
}

// OutermostIter streams ω(a): since containers sort before the regions they
// include, a region is outermost iff its end exceeds the running maximum —
// the same sweep Set.Outermost runs, one region at a time.
func OutermostIter(a Iterator) Iterator {
	return &outermostIter{a: cursor{it: a}, maxEnd: minInt}
}

const minInt = -1 << 62

type outermostIter struct {
	term
	a      cursor
	maxEnd int
}

func (it *outermostIter) Next() (Region, bool, error) {
	if it.done {
		return it.terminal()
	}
	for {
		r, ok, err := it.a.head()
		if err != nil {
			return it.fail(err)
		}
		if !ok {
			return it.finish()
		}
		it.a.advance()
		if r.End > it.maxEnd {
			it.maxEnd = r.End
			return r, true, nil
		}
	}
}

func (it *outermostIter) Close() {
	it.done = true
	it.a.close()
}

// InnermostIter streams ι(a). A region r is innermost iff no later region s
// (in canonical order every region r could include arrives after it) has
// s.End ≤ r.End, so r's fate is unknown until either a later region starts
// at or past r.End (r survives) or a region included in r arrives (r is
// out). Candidates wait in a pending list; surviving pendings never include
// one another, so their Starts and Ends are both increasing, flushes are
// prefix flushes, and the emission order is the input order. The pending
// list is bounded by the input's partial-overlap degree — at most one entry
// for properly nested inputs.
func InnermostIter(a Iterator) Iterator {
	return &innermostIter{a: cursor{it: a}}
}

type innermostIter struct {
	term
	a       cursor
	pending []Region // undecided candidates; Starts and Ends increasing
	ready   []Region // decided innermost, not yet emitted
	flushed bool     // input exhausted and pending moved to ready
}

func (it *innermostIter) Next() (Region, bool, error) {
	if it.done {
		return it.terminal()
	}
	for {
		if len(it.ready) > 0 {
			r := it.ready[0]
			it.ready = it.ready[1:]
			return r, true, nil
		}
		if it.flushed {
			return it.finish()
		}
		s, ok, err := it.a.head()
		if err != nil {
			return it.fail(err)
		}
		if !ok {
			it.ready = append(it.ready, it.pending...)
			it.pending = it.pending[:0]
			it.flushed = true
			continue
		}
		it.a.advance()
		// Pendings ending at or before s.Start can never include a later
		// region (later Starts are ≥ s.Start): they are innermost.
		cut := 0
		for cut < len(it.pending) && it.pending[cut].End <= s.Start {
			cut++
		}
		it.ready = append(it.ready, it.pending[:cut]...)
		it.pending = it.pending[cut:]
		// Pendings including s are not innermost. All pendings have
		// Start ≤ s.Start, so inclusion is End ≥ s.End — a suffix of the
		// increasing-End pending list.
		keep := len(it.pending)
		for keep > 0 && it.pending[keep-1].End >= s.End {
			keep--
		}
		it.pending = it.pending[:keep]
		it.pending = append(it.pending, s)
	}
}

func (it *innermostIter) Close() {
	it.done = true
	it.pending, it.ready = nil, nil
	it.a.close()
}

// IncludingIter streams r ⊃ s: the regions of r strictly including at least
// one region of s. It keeps a window of s-regions whose Start is within the
// current r region (bounded lookahead: the window is trimmed as r's Start
// advances) and a monotone deque over the window's End positions, so the
// "does r include some s" test is an O(1) minimum lookup; only the
// self-match tie (min End equals r.End with r itself in the window) scans
// the window, mirroring the strictBesides caveat of the materializing
// kernel. check, when non-nil, is polled during that scan.
func IncludingIter(r, s Iterator, check Checker) Iterator {
	return &includingIter{r: cursor{it: r}, s: cursor{it: s}, check: check}
}

type includingIter struct {
	term
	r, s  cursor
	check Checker
	win   []Region // s-regions with Start ≥ current r.Start, arrival order
	off   int      // absolute index of win[0]
	deq   []int    // absolute indices into the window, Ends increasing
	sEOF  bool
}

func (it *includingIter) winAt(abs int) Region { return it.win[abs-it.off] }

func (it *includingIter) Next() (Region, bool, error) {
	if it.done {
		return it.terminal()
	}
	for {
		r, ok, err := it.r.head()
		if err != nil {
			return it.fail(err)
		}
		if !ok {
			return it.finish()
		}
		it.r.advance()
		// Drop window entries starting before r: future r-regions start no
		// earlier, so those entries can never again be included.
		for len(it.win) > 0 && it.win[0].Start < r.Start {
			it.win = it.win[1:]
			it.off++
		}
		for len(it.deq) > 0 && it.deq[0] < it.off {
			it.deq = it.deq[1:]
		}
		// Extend the window to every s with Start ≤ r.End. Entries past
		// r.End are harmless for the inclusion test — their End exceeds
		// their Start, hence exceeds r.End — and a later r may need them.
		for !it.sEOF {
			s, sok, err := it.s.head()
			if err != nil {
				return it.fail(err)
			}
			if !sok {
				it.sEOF = true
				break
			}
			if s.Start > r.End {
				break
			}
			it.s.advance()
			if s.Start < r.Start {
				continue
			}
			abs := it.off + len(it.win)
			it.win = append(it.win, s)
			for len(it.deq) > 0 && it.winAt(it.deq[len(it.deq)-1]).End >= s.End {
				it.deq = it.deq[:len(it.deq)-1]
			}
			it.deq = append(it.deq, abs)
		}
		if len(it.deq) == 0 {
			continue
		}
		// Window entries have Start ∈ [r.Start, …]; r includes one iff its
		// End is ≤ r.End, so the window's minimum End decides.
		minEnd := it.winAt(it.deq[0]).End
		if minEnd > r.End {
			continue
		}
		if minEnd < r.End {
			return r, true, nil // witness differs from r in End: strict
		}
		// minEnd == r.End: the only includable entries end exactly at
		// r.End; strictness needs one that is not r itself.
		emit := false
		for i, s := range it.win {
			if err := poll(it.check, i); err != nil {
				return it.fail(err)
			}
			if s.End == r.End && s != r {
				emit = true
				break
			}
		}
		if emit {
			return r, true, nil
		}
	}
}

func (it *includingIter) Close() {
	it.done = true
	it.win, it.deq = nil, nil
	it.r.close()
	it.s.close()
}

// IncludedIter streams r ⊂ s: the regions of r strictly included in at
// least one region of s. Containers of r start at or before r.Start — a
// prefix of s consumed monotonically — so constant state suffices: the
// running maximum End, how many consumed containers reach it, and one
// example (to rule out the self-match without keeping the prefix around).
func IncludedIter(r, s Iterator) Iterator {
	return &includedIter{r: cursor{it: r}, s: cursor{it: s}, maxEnd: minInt}
}

type includedIter struct {
	term
	r, s   cursor
	sEOF   bool
	maxEnd int    // max End among consumed s-regions
	nMax   int    // how many consumed s-regions have End == maxEnd
	exMax  Region // one of them
}

func (it *includedIter) Next() (Region, bool, error) {
	if it.done {
		return it.terminal()
	}
	for {
		r, ok, err := it.r.head()
		if err != nil {
			return it.fail(err)
		}
		if !ok {
			return it.finish()
		}
		it.r.advance()
		for !it.sEOF {
			s, sok, err := it.s.head()
			if err != nil {
				return it.fail(err)
			}
			if !sok {
				it.sEOF = true
				break
			}
			if s.Start > r.Start {
				break
			}
			it.s.advance()
			switch {
			case s.End > it.maxEnd:
				it.maxEnd, it.nMax, it.exMax = s.End, 1, s
			case s.End == it.maxEnd:
				it.nMax++
			}
		}
		// Consumed s-regions start at or before r.Start; one includes r iff
		// its End is ≥ r.End. maxEnd > r.End gives a strict container
		// outright. maxEnd == r.End means every container ends exactly at
		// r.End: strictness needs one besides r itself, i.e. two of them or
		// a single one that is not r.
		if it.maxEnd > r.End || (it.maxEnd == r.End && (it.nMax >= 2 || it.exMax != r)) {
			return r, true, nil
		}
	}
}

func (it *includedIter) Close() {
	it.done = true
	it.r.close()
	it.s.close()
}
