package region

// This file implements the inclusion operators of the region algebra:
//
//	R ⊃ S  = {r ∈ R : ∃s ∈ S, r ⊋ s}          (Including)
//	R ⊂ S  = {r ∈ R : ∃s ∈ S, s ⊋ r}          (Included)
//	R ⊃d S = {r ∈ R : ∃s ∈ S, r ⊋ s and no    (DirectlyIncluding)
//	          other indexed region lies strictly between r and s}
//	R ⊂d S = the dual of ⊃d                    (DirectlyIncluded)
//
// Since a region is identified by its pair of positions, inclusion between
// *distinct* regions is strict inclusion of position pairs. The strict
// reading is forced by the paper's surrounding definitions: Definition 3.1
// constrains only direct inclusions between distinct regions, ι and ω
// explicitly require r' ≠ r, and Proposition 3.3(ii) ("no RIG path from Ri
// to Rj ⇒ Ri ⊃ Rj is empty") would be false for Ri ⊃ Ri under a reflexive
// reading.
//
// The direct operators need the universe of indexed regions (the union of
// all instance sets) to rule out regions lying in between; see Universe.
// Per the paper, ⊃d and ⊂d are significantly more expensive than ⊃ and ⊂.

import "math/bits"

// Including returns R ⊃ S: the regions of R that strictly include at least
// one region of S. It runs in O((|R|+|S|) log |S|) using a sparse-table
// range-minimum structure over the end positions of S, except when a region
// of R also occurs in S, where ruling out the self-match may scan the
// candidate range.
func (s Set) Including(t Set) Set {
	out, _ := s.IncludingCtl(t, nil)
	return out
}

// IncludingCtl is Including with cooperative cancellation: check is polled
// every pollStride regions of R and a non-nil return aborts the sweep.
func (s Set) IncludingCtl(t Set, check Checker) (Set, error) {
	R, S := s, t
	if R.IsEmpty() || S.IsEmpty() {
		return Empty, nil
	}
	rmq := newMinTable(S.regions)
	out := make([]Region, 0, len(R.regions))
	var abort error
	for i, r := range R.regions {
		if abort = poll(check, i); abort != nil {
			break
		}
		// Candidates s have s.Start in [r.Start, r.End]; since the set
		// is sorted primarily by Start this is a contiguous index
		// range, and r includes one of them iff the minimum end in the
		// range is ≤ r.End. The only non-strict inclusion is s == r.
		lo := lowerBoundStart(S.regions, r.Start)
		hi := upperBoundStart(S.regions, r.End)
		if lo >= hi {
			continue
		}
		ok := rmq.min(lo, hi) <= r.End
		if ok && S.Contains(r) {
			ok = strictBesides(S.regions[lo:hi], r)
		}
		if ok {
			out = append(out, r)
		}
	}
	rmq.release()
	if abort != nil {
		return Empty, abort
	}
	return trimmed(out), nil
}

// strictBesides reports whether some region in cands other than r is
// included in r. cands all have Start within [r.Start, r.End].
func strictBesides(cands []Region, r Region) bool {
	for _, s := range cands {
		if s != r && r.Includes(s) {
			return true
		}
	}
	return false
}

// Included returns R ⊂ S: the regions of R strictly included in at least
// one region of S. It runs in O((|R|+|S|) log |S|) using a prefix-maximum
// over the end positions of S, with the same self-match caveat as
// Including.
func (s Set) Included(t Set) Set {
	out, _ := s.IncludedCtl(t, nil)
	return out
}

// IncludedCtl is Included with cooperative cancellation: check is polled
// every pollStride regions of R and a non-nil return aborts the sweep.
func (s Set) IncludedCtl(t Set, check Checker) (Set, error) {
	R, S := s, t
	if R.IsEmpty() || S.IsEmpty() {
		return Empty, nil
	}
	// prefMax[i] = max end among S.regions[0:i] (those starts are ≤ any
	// later start).
	buf := getIntBuf()
	prefMax := buf.ints(len(S.regions) + 1)
	prefMax[0] = -1
	var abort error
	for i, sr := range S.regions {
		if abort = poll(check, i); abort != nil {
			break
		}
		prefMax[i+1] = max(prefMax[i], sr.End)
	}
	out := make([]Region, 0, len(R.regions))
	for i, r := range R.regions {
		if abort != nil {
			break
		}
		if abort = poll(check, i); abort != nil {
			break
		}
		// Containers s have s.Start ≤ r.Start, a prefix of S; one of
		// them contains r iff the maximum end in the prefix is ≥ r.End.
		hi := upperBoundStart(S.regions, r.Start)
		if hi == 0 || prefMax[hi] < r.End {
			continue
		}
		// Some container exists; it is strict unless the only
		// container is r itself.
		if prefMax[hi] > r.End || !S.Contains(r) || containerBesides(S.regions[:hi], r) {
			out = append(out, r)
		}
	}
	putIntBuf(buf)
	if abort != nil {
		return Empty, abort
	}
	return trimmed(out), nil
}

// containerBesides reports whether some region in cands other than r
// includes r. cands all have Start ≤ r.Start.
func containerBesides(cands []Region, r Region) bool {
	for _, s := range cands {
		if s != r && s.Includes(r) {
			return true
		}
	}
	return false
}

// lowerBoundStart returns the first index i with regions[i].Start >= v.
func lowerBoundStart(rs []Region, v int) int {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid].Start < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBoundStart returns the first index i with regions[i].Start > v.
func upperBoundStart(rs []Region, v int) int {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid].Start <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// minTable is a sparse table answering range-minimum queries over the end
// positions of a sorted region slice in O(1) after O(n log n) setup. All
// levels live in one pooled scratch buffer; callers release the table when
// done with it.
type minTable struct {
	rows [][]int
	buf  *intBuf
}

func newMinTable(rs []Region) minTable {
	n := len(rs)
	levels, total := 1, n
	for width := 2; width <= n; width *= 2 {
		levels++
		total += n - width + 1
	}
	buf := getIntBuf()
	flat := buf.ints(total)
	rows := make([][]int, 1, levels)
	rows[0] = flat[:n]
	for i, r := range rs {
		rows[0][i] = r.End
	}
	off := n
	for width := 2; width <= n; width *= 2 {
		prev := rows[len(rows)-1]
		next := flat[off : off+n-width+1]
		off += n - width + 1
		for i := range next {
			next[i] = min(prev[i], prev[i+width/2])
		}
		rows = append(rows, next)
	}
	return minTable{rows: rows, buf: buf}
}

func (t minTable) release() { putIntBuf(t.buf) }

// min returns the minimum end in the half-open index range [lo, hi).
func (t minTable) min(lo, hi int) int {
	k := bits.Len(uint(hi-lo)) - 1
	return min(t.rows[k][lo], t.rows[k][hi-(1<<k)])
}

// Universe is the set of all indexed regions, used by the direct-inclusion
// operators to decide whether some region lies between two others. Building
// it detects proper nesting once, enabling the fast parent-based evaluation
// of ⊃d and ⊂d for parse-tree-shaped instances.
type Universe struct {
	all    Set
	nested bool
	parent []int // forest parent indexes into all.regions, -1 for roots (nested only)
}

// NewUniverse builds the universe from the union of all instance sets.
func NewUniverse(instances ...Set) *Universe {
	all := Empty
	for _, s := range instances {
		all = all.Union(s)
	}
	u := &Universe{all: all, nested: all.ProperlyNested()}
	if u.nested {
		u.parent = buildForest(all.regions)
	}
	return u
}

// All returns the union of every instance set in the universe.
func (u *Universe) All() Set { return u.all }

// ProperlyNested reports whether the universe regions form a forest
// (no partial overlaps).
func (u *Universe) ProperlyNested() bool { return u.nested }

// MaxDepth returns the number of nesting levels in the universe: 0 for an
// empty universe and 1 when no region strictly contains another. Depth is
// only tracked through the forest, so a non-nested universe reports 1.
func (u *Universe) MaxDepth() int {
	if u.all.IsEmpty() {
		return 0
	}
	if !u.nested {
		return 1
	}
	// Containers sort before the regions they include, so parent[i] < i
	// and a single forward pass computes every depth.
	depth := make([]int, len(u.parent))
	maxd := 1
	for i, p := range u.parent {
		if p < 0 {
			depth[i] = 1
		} else {
			depth[i] = depth[p] + 1
		}
		maxd = max(maxd, depth[i])
	}
	return maxd
}

// buildForest computes, for regions sorted by (Start asc, End desc) with no
// partial overlaps, the index of each region's tightest strict container
// (-1 for roots) with a single stack sweep.
func buildForest(rs []Region) []int {
	parent := make([]int, len(rs))
	var stack []int
	for i, r := range rs {
		for len(stack) > 0 && !rs[stack[len(stack)-1]].StrictlyIncludes(r) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			parent[i] = stack[len(stack)-1]
		} else {
			parent[i] = -1
		}
		stack = append(stack, i)
	}
	return parent
}

// Parent returns the tightest strict container of r in the universe and
// whether one exists. It requires a properly nested universe.
func (u *Universe) Parent(r Region) (Region, bool) {
	if !u.nested {
		panic("region: Parent requires a properly nested universe")
	}
	i := u.indexOf(r)
	if i < 0 || u.parent[i] < 0 {
		return Region{}, false
	}
	return u.all.regions[u.parent[i]], true
}

func (u *Universe) indexOf(r Region) int {
	lo := lowerBoundStart(u.all.regions, r.Start)
	for i := lo; i < len(u.all.regions) && u.all.regions[i].Start == r.Start; i++ {
		if u.all.regions[i] == r {
			return i
		}
	}
	return -1
}

// Between reports whether some universe region t ∉ {r, s} satisfies
// r ⊇ t ⊇ s. This is the paper's "other indexed region between r and s".
func (u *Universe) Between(r, s Region) bool {
	if !r.Includes(s) {
		return false
	}
	if u.nested {
		// Walk up from s: the containers of s are exactly its
		// ancestors (plus s itself).
		cur := s
		for {
			p, ok := u.Parent(cur)
			if !ok || !r.Includes(p) {
				return false
			}
			if p != r && p != s {
				return true
			}
			if p == r {
				return false
			}
			cur = p
		}
	}
	for _, t := range u.containers(s) {
		if t != r && t != s && r.Includes(t) {
			return true
		}
	}
	return false
}

// containers returns all universe regions that include s (including s itself
// if present). Used only on non-nested universes.
func (u *Universe) containers(s Region) []Region {
	var out []Region
	hi := upperBoundStart(u.all.regions, s.Start)
	for i := 0; i < hi; i++ {
		if t := u.all.regions[i]; t.Includes(s) {
			out = append(out, t)
		}
	}
	return out
}

// directContainers returns the universe regions that directly include s:
// the minimal elements (under inclusion) of the strict containers of s.
func (u *Universe) directContainers(s Region) []Region {
	if u.nested {
		if p, ok := u.Parent(s); ok {
			return []Region{p}
		}
		if u.indexOf(s) >= 0 {
			return nil
		}
		// s is not itself indexed: its direct containers are the
		// tightest universe regions including it.
		var best []Region
		for _, t := range u.containers(s) {
			if t == s {
				continue
			}
			if len(best) == 0 || best[0].StrictlyIncludes(t) {
				best = []Region{t}
			}
		}
		return best
	}
	var minimal []Region
	for _, t := range u.containers(s) {
		if t == s {
			continue
		}
		dominated := false
		for _, t2 := range u.containers(s) {
			if t2 != s && t2 != t && t.StrictlyIncludes(t2) {
				dominated = true
				break
			}
		}
		if !dominated {
			minimal = append(minimal, t)
		}
	}
	return minimal
}

// DirectContainers returns the universe regions that directly include s —
// the minimal elements (under inclusion) of s's strict containers. It is
// the exported seam the streaming executor uses to evaluate the direct
// operators one region at a time.
func (u *Universe) DirectContainers(s Region) []Region { return u.directContainers(s) }

// DirectlyIncluding returns R ⊃d S: the regions of R strictly including some
// region of S with no other universe region strictly between them — i.e. R's
// regions that are direct containers of an S region.
func (u *Universe) DirectlyIncluding(R, S Set) Set {
	out, _ := u.DirectlyIncludingCtl(R, S, nil)
	return out
}

// DirectlyIncludingCtl is DirectlyIncluding with cooperative cancellation:
// check is polled every pollStride regions of S. On non-nested universes one
// iteration scans the containers of s, so this is the poll that bounds the
// O(n²) worst case the paper warns about.
func (u *Universe) DirectlyIncludingCtl(R, S Set, check Checker) (Set, error) {
	if R.IsEmpty() || S.IsEmpty() {
		return Empty, nil
	}
	var cand []Region
	for i, s := range S.regions {
		if err := poll(check, i); err != nil {
			return Empty, err
		}
		cand = append(cand, u.directContainers(s)...)
	}
	return FromRegions(cand).Intersect(R), nil
}

// DirectlyIncluded returns R ⊂d S: the regions of R whose direct container
// is a region of S.
func (u *Universe) DirectlyIncluded(R, S Set) Set {
	out, _ := u.DirectlyIncludedCtl(R, S, nil)
	return out
}

// DirectlyIncludedCtl is DirectlyIncluded with cooperative cancellation:
// check is polled every pollStride regions of R.
func (u *Universe) DirectlyIncludedCtl(R, S Set, check Checker) (Set, error) {
	if R.IsEmpty() || S.IsEmpty() {
		return Empty, nil
	}
	var out []Region
	for i, r := range R.regions {
		if err := poll(check, i); err != nil {
			return Empty, err
		}
		//qoflint:allow ctxpoll direct-container chains are bounded by nesting depth; the outer loop polls per region
		for _, t := range u.directContainers(r) {
			if S.Contains(t) {
				out = append(out, r)
				break
			}
		}
	}
	return fromSorted(out), nil
}
