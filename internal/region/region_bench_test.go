package region

import (
	"math/rand"
	"testing"
)

// benchSets builds a realistic nested workload: nOuter disjoint containers
// each holding nInner disjoint children.
func benchSets(nOuter, nInner int) (outer, inner Set) {
	span := 10 * (nInner + 1)
	var os, is []Region
	for i := 0; i < nOuter; i++ {
		base := i * (span + 5)
		os = append(os, Region{Start: base, End: base + span})
		for j := 0; j < nInner; j++ {
			s := base + 2 + j*10
			is = append(is, Region{Start: s, End: s + 6})
		}
	}
	return FromRegions(os), FromRegions(is)
}

func BenchmarkIncluding(b *testing.B) {
	outer, inner := benchSets(2000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outer.Including(inner)
	}
}

func BenchmarkIncluded(b *testing.B) {
	outer, inner := benchSets(2000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inner.Included(outer)
	}
}

func BenchmarkNaiveIncluding(b *testing.B) {
	outer, inner := benchSets(200, 5) // quadratic: keep small
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveIncluding(outer, inner)
	}
}

func BenchmarkDirectlyIncludingNested(b *testing.B) {
	outer, inner := benchSets(2000, 5)
	u := NewUniverse(outer, inner)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.DirectlyIncluding(outer, inner)
	}
}

func BenchmarkUniverseBuild(b *testing.B) {
	outer, inner := benchSets(2000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewUniverse(outer, inner)
	}
}

func BenchmarkUnion(b *testing.B) {
	a, c := benchSets(5000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Union(c)
	}
}

func BenchmarkInnermost(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var rs []Region
	for i := 0; i < 10000; i++ {
		s := rng.Intn(100000)
		rs = append(rs, Region{Start: s, End: s + 1 + rng.Intn(500)})
	}
	set := FromRegions(rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Innermost()
	}
}

func BenchmarkFromRegions(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rs := make([]Region, 10000)
	for i := range rs {
		s := rng.Intn(100000)
		rs[i] = Region{Start: s, End: s + 1 + rng.Intn(100)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromRegions(rs)
	}
}
