// Package region implements the data structures underlying the PAT region
// algebra of Salminen & Tompa as used by Consens & Milo (SIGMOD'94):
// regions of text, sorted region sets, and the inclusion machinery (⊃, ⊂,
// ⊃d, ⊂d, innermost, outermost) together with efficient sweep-based
// implementations and naive reference implementations for testing.
//
// A region is a half-open byte range [Start, End) of the indexed text and is
// identified by its pair of positions, exactly as in the paper ("each region
// ... is defined by a pair of positions in the text"). A Set is a
// duplicate-free slice of regions sorted by (Start ascending, End
// descending), so that under proper nesting outer regions precede the
// regions they include.
package region

import (
	"fmt"
	"sort"
)

// Region is a half-open byte range [Start, End) of the indexed text.
type Region struct {
	Start int
	End   int
}

// Len reports the byte length of the region.
func (r Region) Len() int { return r.End - r.Start }

// Includes reports whether r includes s: the endpoints of s are within those
// of r (r ⊇ s, inclusive of equality), per the paper's definition of ⊃.
func (r Region) Includes(s Region) bool {
	return r.Start <= s.Start && s.End <= r.End
}

// StrictlyIncludes reports whether r includes s and r ≠ s.
func (r Region) StrictlyIncludes(s Region) bool {
	return r.Includes(s) && r != s
}

// Overlaps reports whether r and s share at least one position without one
// including the other ("partial overlap").
func (r Region) Overlaps(s Region) bool {
	if r.Includes(s) || s.Includes(r) {
		return false
	}
	return r.Start < s.End && s.Start < r.End
}

// Before orders regions by (Start ascending, End descending). Under proper
// nesting this places every region before the regions it includes.
func (r Region) Before(s Region) bool {
	if r.Start != s.Start {
		return r.Start < s.Start
	}
	return r.End > s.End
}

func (r Region) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// Set is a set of regions: duplicate-free and sorted by (Start asc, End
// desc). The zero value is the empty set. Sets are treated as immutable;
// operations return new sets.
type Set struct {
	regions []Region
}

// Empty is the empty region set.
var Empty = Set{}

// FromRegions builds a set from arbitrary regions, sorting and removing
// duplicates. The input slice is not retained.
//
// qoflint:canonicalizer — this is the constructor that establishes the
// (Start asc, End desc), duplicate-free invariant for untrusted input.
func FromRegions(rs []Region) Set {
	if len(rs) == 0 {
		return Set{}
	}
	out := make([]Region, len(rs))
	copy(out, rs)
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return Set{regions: out[:w]}
}

// fromSorted wraps a slice that is already sorted and duplicate-free.
// Callers must not modify the slice afterwards.
//
// qoflint:canonicalizer — kernels that emit regions in sweep order wrap
// their output here; the marker keeps raw Set literals out of their code.
func fromSorted(rs []Region) Set { return Set{regions: rs} }

// Len reports the number of regions in the set.
func (s Set) Len() int { return len(s.regions) }

// IsEmpty reports whether the set has no regions.
func (s Set) IsEmpty() bool { return len(s.regions) == 0 }

// Regions exposes the sorted backing slice. Callers must not modify it.
func (s Set) Regions() []Region { return s.regions }

// At returns the i-th region in (Start asc, End desc) order.
func (s Set) At(i int) Region { return s.regions[i] }

// Contains reports whether the set contains exactly the region r.
func (s Set) Contains(r Region) bool {
	i := sort.Search(len(s.regions), func(i int) bool { return !s.regions[i].Before(r) })
	return i < len(s.regions) && s.regions[i] == r
}

// Equal reports whether two sets hold exactly the same regions.
func (s Set) Equal(t Set) bool {
	if len(s.regions) != len(t.regions) {
		return false
	}
	for i := range s.regions {
		if s.regions[i] != t.regions[i] {
			return false
		}
	}
	return true
}

func (s Set) String() string {
	out := "{"
	for i, r := range s.regions {
		if i > 0 {
			out += " "
		}
		out += r.String()
	}
	return out + "}"
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if s.IsEmpty() {
		return t
	}
	if t.IsEmpty() {
		return s
	}
	out := make([]Region, 0, len(s.regions)+len(t.regions))
	i, j := 0, 0
	for i < len(s.regions) && j < len(t.regions) {
		a, b := s.regions[i], t.regions[j]
		switch {
		case a == b:
			out = append(out, a)
			i++
			j++
		case a.Before(b):
			out = append(out, a)
			i++
		default:
			out = append(out, b)
			j++
		}
	}
	out = append(out, s.regions[i:]...)
	out = append(out, t.regions[j:]...)
	return fromSorted(out)
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	if s.IsEmpty() || t.IsEmpty() {
		return Empty
	}
	out := make([]Region, 0, min(len(s.regions), len(t.regions)))
	i, j := 0, 0
	for i < len(s.regions) && j < len(t.regions) {
		a, b := s.regions[i], t.regions[j]
		switch {
		case a == b:
			out = append(out, a)
			i++
			j++
		case a.Before(b):
			i++
		default:
			j++
		}
	}
	return trimmed(out)
}

// Diff returns s − t.
func (s Set) Diff(t Set) Set {
	if s.IsEmpty() {
		return Empty
	}
	if t.IsEmpty() {
		return s
	}
	out := make([]Region, 0, len(s.regions))
	i, j := 0, 0
	for i < len(s.regions) {
		if j >= len(t.regions) {
			out = append(out, s.regions[i:]...)
			break
		}
		a, b := s.regions[i], t.regions[j]
		switch {
		case a == b:
			i++
			j++
		case a.Before(b):
			out = append(out, a)
			i++
		default:
			j++
		}
	}
	return trimmed(out)
}

// Filter returns the subset of s whose regions satisfy keep.
func (s Set) Filter(keep func(Region) bool) Set {
	if s.IsEmpty() {
		return Empty
	}
	out := make([]Region, 0, len(s.regions))
	for _, r := range s.regions {
		if keep(r) {
			out = append(out, r)
		}
	}
	return trimmed(out)
}

// Outermost implements the ω operation: the regions of s not included in any
// other region of s (the maximal elements of s under inclusion).
func (s Set) Outermost() Set {
	if s.IsEmpty() {
		return Empty
	}
	out := make([]Region, 0, len(s.regions))
	maxEnd := -1
	for _, r := range s.regions {
		// Everything earlier in (Start asc, End desc) order has
		// start ≤ r.Start; such a region includes r iff its end ≥ r.End.
		if r.End > maxEnd {
			out = append(out, r)
			maxEnd = r.End
		}
	}
	return trimmed(out)
}

// Innermost implements the ι operation: the regions of s that include no
// other region of s (the minimal elements of s under inclusion).
func (s Set) Innermost() Set {
	out := make([]Region, 0, len(s.regions))
	minEnd := int(^uint(0) >> 1) // max int
	for i := len(s.regions) - 1; i >= 0; i-- {
		// Everything later in order has start ≥ r.Start (same-start
		// regions later have smaller end); such a region is included
		// in r iff its end ≤ r.End.
		r := s.regions[i]
		if r.End < minEnd {
			out = append(out, r)
			minEnd = r.End
		}
	}
	// Reverse back into sorted order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return trimmed(out)
}

// ProperlyNested reports whether no two regions of the set partially
// overlap, i.e. any two regions are either disjoint or nested. Region
// instances extracted from parse trees are always properly nested.
func (s Set) ProperlyNested() bool {
	// Sweep in (Start asc, End desc) order with a stack of open regions.
	var stack []int // open region end positions
	for _, r := range s.regions {
		for len(stack) > 0 && stack[len(stack)-1] <= r.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && stack[len(stack)-1] < r.End {
			return false // r starts inside the top but ends outside it
		}
		stack = append(stack, r.End)
	}
	return true
}
