package region

// Naive reference implementations of the inclusion operators, used by the
// property-based tests as ground truth and by the benchmarks as the
// unoptimized baseline. They follow the set-builder definitions directly
// (with the strict position-pair reading of inclusion; see inclusion.go)
// and run in quadratic (cubic for the direct operators) time.

// NaiveIncluding computes R ⊃ S by definition: {r ∈ R : ∃s ∈ S, r ⊋ s}.
func NaiveIncluding(R, S Set) Set {
	var out []Region
	for _, r := range R.regions {
		for _, s := range S.regions {
			if r.StrictlyIncludes(s) {
				out = append(out, r)
				break
			}
		}
	}
	return fromSorted(out)
}

// NaiveIncluded computes R ⊂ S by definition: {r ∈ R : ∃s ∈ S, s ⊋ r}.
func NaiveIncluded(R, S Set) Set {
	var out []Region
	for _, r := range R.regions {
		for _, s := range S.regions {
			if s.StrictlyIncludes(r) {
				out = append(out, r)
				break
			}
		}
	}
	return fromSorted(out)
}

// NaiveDirectlyIncluding computes R ⊃d S by definition: {r ∈ R : ∃s ∈ S,
// r ⊋ s, and no universe region t satisfies r ⊋ t ⊋ s}.
func NaiveDirectlyIncluding(R, S Set, universe Set) Set {
	var out []Region
	for _, r := range R.regions {
		if naiveDirectPair(r, S, universe) {
			out = append(out, r)
		}
	}
	return fromSorted(out)
}

func naiveDirectPair(r Region, S Set, universe Set) bool {
	for _, s := range S.regions {
		if !r.StrictlyIncludes(s) {
			continue
		}
		between := false
		for _, t := range universe.regions {
			if r.StrictlyIncludes(t) && t.StrictlyIncludes(s) {
				between = true
				break
			}
		}
		if !between {
			return true
		}
	}
	return false
}

// NaiveDirectlyIncluded computes R ⊂d S by definition: {r ∈ R : ∃s ∈ S,
// s ⊋ r, and no universe region t satisfies s ⊋ t ⊋ r}.
func NaiveDirectlyIncluded(R, S Set, universe Set) Set {
	var out []Region
	for _, r := range R.regions {
		for _, s := range S.regions {
			if !s.StrictlyIncludes(r) {
				continue
			}
			between := false
			for _, t := range universe.regions {
				if s.StrictlyIncludes(t) && t.StrictlyIncludes(r) {
					between = true
					break
				}
			}
			if !between {
				out = append(out, r)
				break
			}
		}
	}
	return fromSorted(out)
}

// NaiveInnermost computes ι(R) by definition.
func NaiveInnermost(R Set) Set {
	var out []Region
	for _, r := range R.regions {
		minimal := true
		for _, r2 := range R.regions {
			if r2 != r && r.Includes(r2) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, r)
		}
	}
	return fromSorted(out)
}

// NaiveOutermost computes ω(R) by definition.
func NaiveOutermost(R Set) Set {
	var out []Region
	for _, r := range R.regions {
		maximal := true
		for _, r2 := range R.regions {
			if r2 != r && r2.Includes(r) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, r)
		}
	}
	return fromSorted(out)
}
