package region

import "sync"

// The inclusion kernels need integer scratch (range-minimum tables, prefix
// maxima) proportional to the operand sizes. Under concurrent query serving
// those buffers dominated the allocation profile, so they are recycled
// through a pool instead of allocated per call.

// intBuf is a pooled integer scratch buffer. Kernels acquire one with
// getIntBuf, slice it with ints, and return it with putIntBuf.
type intBuf struct{ s []int }

var intPool = sync.Pool{New: func() any { return new(intBuf) }}

func getIntBuf() *intBuf  { return intPool.Get().(*intBuf) }
func putIntBuf(b *intBuf) { intPool.Put(b) }

// ints returns a length-n view of the buffer, growing it when needed.
// Contents are unspecified; callers must overwrite before reading.
func (b *intBuf) ints(n int) []int {
	if cap(b.s) < n {
		b.s = make([]int, n)
	}
	return b.s[:n]
}

// trimmed wraps out as a Set, copying to a right-sized slice when the
// capacity hint left most of it unused, so long-lived results (cached sets,
// instance extents) don't pin oversized backing arrays.
func trimmed(out []Region) Set {
	if len(out) == 0 {
		return Empty
	}
	if cap(out) >= 4*len(out) {
		exact := make([]Region, len(out))
		copy(exact, out)
		out = exact
	}
	return fromSorted(out)
}
