package region

import (
	"errors"
	"math/rand"
	"testing"
)

// collect drains an iterator into a Set via Materialize, failing on error.
func collect(t *testing.T, it Iterator) Set {
	t.Helper()
	s, err := Materialize(it)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	return s
}

// TestIteratorsMatchSetOps is the kernel-level differential: every streaming
// operator must reproduce its materializing counterpart exactly on random
// overlapping sets (the hard cases for the inclusion windows).
func TestIteratorsMatchSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 500; trial++ {
		sets := randomSets(rng, 2+rng.Intn(40), 2, 30)
		R, S := sets[0], sets[1]
		cases := []struct {
			name string
			want Set
			got  Iterator
		}{
			{"union", R.Union(S), UnionIter(R.Iter(), S.Iter())},
			{"intersect", R.Intersect(S), IntersectIter(R.Iter(), S.Iter())},
			{"diff", R.Diff(S), DiffIter(R.Iter(), S.Iter())},
			{"including", R.Including(S), IncludingIter(R.Iter(), S.Iter(), nil)},
			{"included", R.Included(S), IncludedIter(R.Iter(), S.Iter())},
			{"innermost", R.Innermost(), InnermostIter(R.Iter())},
			{"outermost", R.Outermost(), OutermostIter(R.Iter())},
			{"self-including", R.Including(R), IncludingIter(R.Iter(), R.Iter(), nil)},
			{"self-included", R.Included(R), IncludedIter(R.Iter(), R.Iter())},
		}
		for _, c := range cases {
			if got := collect(t, c.got); !got.Equal(c.want) {
				t.Fatalf("trial %d %s: streaming %v, materializing %v\nR=%v\nS=%v",
					trial, c.name, got.Regions(), c.want.Regions(), R.Regions(), S.Regions())
			}
		}
	}
}

// TestIteratorTieCases pins the strictness ties the window iterators handle
// specially: identical regions in both operands, and distinct regions
// sharing a Start or an End.
func TestIteratorTieCases(t *testing.T) {
	R := mk(0, 10, 0, 4, 2, 10, 2, 4)
	if got := collect(t, IncludingIter(R.Iter(), R.Iter(), nil)); !got.Equal(R.Including(R)) {
		t.Errorf("⊃ ties: got %v, want %v", got.Regions(), R.Including(R).Regions())
	}
	if got := collect(t, IncludedIter(R.Iter(), R.Iter())); !got.Equal(R.Included(R)) {
		t.Errorf("⊂ ties: got %v, want %v", got.Regions(), R.Included(R).Regions())
	}
	// A lone region never strictly includes itself.
	one := mk(3, 7)
	if got := collect(t, IncludingIter(one.Iter(), one.Iter(), nil)); !got.IsEmpty() {
		t.Errorf("singleton ⊃ itself: got %v, want empty", got.Regions())
	}
	if got := collect(t, IncludedIter(one.Iter(), one.Iter())); !got.IsEmpty() {
		t.Errorf("singleton ⊂ itself: got %v, want empty", got.Regions())
	}
}

// TestIteratorExhaustionSticky: once an iterator reports exhaustion, every
// later Next must report it again.
func TestIteratorExhaustionSticky(t *testing.T) {
	R, S := mk(0, 2, 4, 6), mk(1, 5)
	its := []Iterator{
		R.Iter(),
		UnionIter(R.Iter(), S.Iter()),
		IntersectIter(R.Iter(), S.Iter()),
		DiffIter(R.Iter(), S.Iter()),
		IncludingIter(R.Iter(), S.Iter(), nil),
		IncludedIter(R.Iter(), S.Iter()),
		InnermostIter(R.Iter()),
		OutermostIter(R.Iter()),
		FilterIter(R.Iter(), func(Region) bool { return true }),
	}
	for i, it := range its {
		for {
			if _, ok, err := it.Next(); err != nil {
				t.Fatalf("iterator %d: %v", i, err)
			} else if !ok {
				break
			}
		}
		for k := 0; k < 3; k++ {
			if _, ok, err := it.Next(); ok || err != nil {
				t.Fatalf("iterator %d: Next after exhaustion = (%v, %v)", i, ok, err)
			}
		}
		it.Close()
	}
}

// TestIteratorCloseAfterPartial: Close mid-stream is clean — idempotent,
// and Next afterwards reports exhaustion rather than resuming.
func TestIteratorCloseAfterPartial(t *testing.T) {
	R, S := mk(0, 10, 1, 3, 5, 9), mk(1, 3, 6, 8)
	it := UnionIter(InnermostIter(R.Iter()), IncludingIter(R.Iter(), S.Iter(), nil))
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatalf("first Next: (%v, %v)", ok, err)
	}
	it.Close()
	it.Close() // idempotent
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("Next after Close = (%v, %v), want exhausted", ok, err)
	}
}

// TestIteratorErrorSticky: a checker failure aborts the stream and the error
// is returned from every subsequent Next.
func TestIteratorErrorSticky(t *testing.T) {
	boom := errors.New("boom")
	// Force the tie-scan path (min End == r.End with only r itself in the
	// window) so the checker is consulted.
	R := mk(0, 10, 0, 4)
	it := IncludingIter(R.Iter(), R.Iter(), func() error { return boom })
	var err error
	for {
		var ok bool
		if _, ok, err = it.Next(); !ok || err != nil {
			break
		}
	}
	if !errors.Is(err, boom) {
		t.Fatalf("checker error not surfaced: %v", err)
	}
	if _, ok, err2 := it.Next(); ok || !errors.Is(err2, boom) {
		t.Fatalf("error not sticky: (%v, %v)", ok, err2)
	}
}

// TestMaterializeCanonical: Materialize output must be canonical without
// re-sorting, i.e. iterator order is the set order by construction.
func TestMaterializeCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		sets := randomSets(rng, 2+rng.Intn(40), 2, 25)
		it := UnionIter(
			IncludingIter(sets[0].Iter(), sets[1].Iter(), nil),
			InnermostIter(sets[1].Iter()),
		)
		got := collect(t, it)
		want := FromRegions(got.Regions()) // canonicalize a copy
		if !got.Equal(want) {
			t.Fatalf("trial %d: non-canonical stream %v", trial, got.Regions())
		}
	}
}
