package region

// Cooperative cancellation for the region kernels. The inclusion sweeps and
// selection filters are the only loops in the engine whose run time grows
// with the operand sizes rather than the query size, so they are where a
// deadline must be able to take effect mid-evaluation. Each kernel has a
// *Ctl variant taking a Checker that the loop polls every pollStride
// iterations; a non-nil return aborts the kernel with that error and the
// partial output is discarded. The plain variants delegate with a nil
// checker, so uncancellable callers pay only a nil comparison per stride.

// Checker is polled periodically by long-running kernels. It returns nil to
// continue or the error to abort with (typically ctx.Err()). Checkers must
// be cheap: they run on the kernel's hot path, though only once per
// pollStride iterations.
type Checker func() error

// pollStride is how many loop iterations a kernel runs between Checker
// polls. It is a power of two so the position test compiles to a mask, and
// small enough that even pathological per-iteration costs (adversarial
// nesting making strictBesides scan its whole candidate range) keep the
// poll latency well under the 50ms budget the facade documents.
const pollStride = 1024

// poll invokes check every pollStride-th iteration i (and on i = 0, which
// costs nothing extra and bounds the latency of already-expired deadlines).
func poll(check Checker, i int) error {
	if check == nil || i&(pollStride-1) != 0 {
		return nil
	}
	return check()
}

// FilterCtl is Filter with cancellation: keep runs per region, check is
// polled every pollStride regions.
func (s Set) FilterCtl(keep func(Region) bool, check Checker) (Set, error) {
	if s.IsEmpty() {
		return Empty, nil
	}
	out := make([]Region, 0, len(s.regions))
	for i, r := range s.regions {
		if err := poll(check, i); err != nil {
			return Empty, err
		}
		if keep(r) {
			out = append(out, r)
		}
	}
	return trimmed(out), nil
}
