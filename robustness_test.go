package qof_test

// End-to-end robustness acceptance tests: deadline behavior on the X2
// stress corpus, facade-level resource budgets, per-file timeouts with
// partial results, and attributed AddAll failures. The fault matrix lives
// in faultmatrix_test.go; engine-internal cancellation tests in
// internal/engine/cancel_test.go.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"qof"
	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/experiments"
	"qof/internal/grammar"
	"qof/internal/xsql"
)

// TestDeadlineOnStressCorpus is the headline acceptance criterion: on the
// X2 stress corpus (the 20k-reference bibliography the concurrency
// experiment sweeps to), a query under a 1ms deadline comes back with
// context.DeadlineExceeded well inside 50ms — cancellation takes effect
// mid-evaluation, not after the query would have finished anyway — and the
// engine keeps serving correct answers afterward.
func TestDeadlineOnStressCorpus(t *testing.T) {
	setup, err := experiments.NewBibtexSetup(20000, grammar.IndexSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := setup.Engine
	join := xsql.MustParse(`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`)
	author := xsql.MustParse(`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)

	// Both executors must honor the deadline mid-flight: the streaming
	// iterator pipeline polls inside Next, the materializing reference
	// inside its kernels and per parsed candidate.
	for _, mode := range []struct {
		name          string
		materializing bool
	}{{"streaming", false}, {"materializing", true}} {
		t.Run(mode.name, func(t *testing.T) {
			eng.Materializing = mode.materializing

			// The query is far too big for 1ms: unconstrained it parses
			// thousands of candidates. The deadline must interrupt it
			// mid-flight.
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err = eng.ExecuteContext(ctx, join, engine.Limits{})
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("1ms deadline: err = %v, want context.DeadlineExceeded", err)
			}
			if elapsed > deadlineLatencyBound {
				t.Errorf("deadline honored after %v, want < %v", elapsed, deadlineLatencyBound)
			}

			// The killed run poisoned nothing: the same engine answers both
			// the interrupted query and an unrelated one with ground-truth
			// counts.
			res, err := eng.Execute(join)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Results != setup.Stats.SelfEditedByAuth {
				t.Errorf("join after deadline: %d results, want %d", res.Stats.Results, setup.Stats.SelfEditedByAuth)
			}
			res, err = eng.Execute(author)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Results != setup.Stats.TargetAsAuthor {
				t.Errorf("author query after deadline: %d results, want %d", res.Stats.Results, setup.Stats.TargetAsAuthor)
			}
		})
	}
}

func TestFacadeQueryBudgets(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []qof.IndexOption
	}{
		{"streaming", nil},
		{"materializing", []qof.IndexOption{qof.WithMaterializing()}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			f, err := qof.BibTeX().Index("b.bib", bibtex.SampleEntry, mode.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.QueryContext(t.Context(), matrixQuery, qof.WithMaxRegions(1)); !errors.Is(err, qof.ErrBudgetExceeded) {
				t.Errorf("WithMaxRegions(1): err = %v, want ErrBudgetExceeded", err)
			}
			if _, err := f.QueryContext(t.Context(), matrixQuery, qof.WithMaxEvalBytes(1)); !errors.Is(err, qof.ErrBudgetExceeded) {
				t.Errorf("WithMaxEvalBytes(1): err = %v, want ErrBudgetExceeded", err)
			}
			// Generous budgets do not interfere, and the budget-killed runs
			// were never cached as wrong answers.
			res, err := f.QueryContext(t.Context(), matrixQuery,
				qof.WithMaxRegions(1_000_000), qof.WithMaxEvalBytes(1<<30))
			if err != nil || res.Len() != 1 {
				t.Fatalf("generous budgets: res = %v, err = %v", res, err)
			}
		})
	}
}

func TestFacadeCorpusFileTimeout(t *testing.T) {
	c := qof.BibTeX().NewCorpus()
	files := map[string]string{"a.bib": bibtex.SampleEntry, "b.bib": bibtex.SampleEntry}
	if err := c.AddAll(files); err != nil {
		t.Fatal(err)
	}
	// Partial mode: every file blows its (instantly expired) budget and is
	// reported in Degraded with its own deadline error; the call succeeds.
	res, err := c.ExecuteContext(t.Context(), matrixQuery,
		qof.WithFileTimeout(time.Nanosecond), qof.WithPartialResults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != 2 {
		t.Fatalf("Degraded = %v, want both files", res.Degraded)
	}
	for _, fe := range res.Degraded {
		if !errors.Is(fe.Err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want DeadlineExceeded", fe.File, fe.Err)
		}
	}
	if err := res.DegradedError(); !errors.Is(err, context.DeadlineExceeded) || !strings.Contains(err.Error(), "b.bib") {
		t.Errorf("DegradedError = %v", err)
	}
	// Without partial mode the same failure fails the call, still naming
	// every file.
	if _, err := c.ExecuteContext(t.Context(), matrixQuery, qof.WithFileTimeout(time.Nanosecond)); err == nil ||
		!errors.Is(err, context.DeadlineExceeded) || !strings.Contains(err.Error(), "a.bib") {
		t.Errorf("non-partial: err = %v", err)
	}
	// And with a sane timeout the corpus serves in full.
	res, err = c.ExecuteContext(t.Context(), matrixQuery, qof.WithFileTimeout(time.Minute))
	if err != nil || len(res.Hits) != 2 || len(res.Degraded) != 0 {
		t.Fatalf("sane timeout: res = %+v, err = %v", res, err)
	}
}

func TestFacadeAddAllContextCancel(t *testing.T) {
	c := qof.BibTeX().NewCorpus()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	files := map[string]string{"a.bib": bibtex.SampleEntry, "b.bib": bibtex.SampleEntry}
	err := c.AddAllContext(ctx, files)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AddAllContext on canceled ctx: %v", err)
	}
	for name := range files {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not attribute %s", err, name)
		}
	}
	// Nothing was added; the corpus is intact and a clean AddAll works.
	if err := c.AddAllContext(context.Background(), files); err != nil {
		t.Fatal(err)
	}
	hits, err := c.Query(matrixQuery)
	if err != nil || len(hits) != 2 {
		t.Fatalf("after recovery: hits = %v, err = %v", hits, err)
	}
}
