module qof

go 1.22
