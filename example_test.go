package qof_test

import (
	"fmt"
	"log"

	"qof"
	"qof/internal/bibtex"
)

// Example reproduces the paper's Section 2 walkthrough: find the references
// where Chang is one of the authors, without scanning the file.
func Example() {
	schema := qof.BibTeX()
	file, err := schema.Index("sample.bib", bibtex.SampleEntry)
	if err != nil {
		log.Fatal(err)
	}
	res, err := file.Query(`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Values, "exact:", res.Stats.Exact)
	// Output: [Corl82a] exact: true
}

// ExampleFile_Eval evaluates a raw region-algebra expression — the paper's
// optimized form of the Chang query.
func ExampleFile_Eval() {
	file, err := qof.BibTeX().Index("sample.bib", bibtex.SampleEntry)
	if err != nil {
		log.Fatal(err)
	}
	spans, err := file.Eval(`Reference > Authors > contains(Last_Name, "Chang")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(spans), "reference(s)")
	// Output: 1 reference(s)
}

// ExampleSchema_Index_partial shows partial indexing (Section 6): with only
// {Reference, Key, Last_Name} indexed, the index yields a candidate
// superset and the engine parses just those candidates.
func ExampleSchema_Index_partial() {
	file, err := qof.BibTeX().Index("sample.bib", bibtex.SampleEntry,
		qof.WithRegions("Reference", "Key", "Last_Name"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := file.Query(`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Values, "exact:", res.Stats.Exact, "candidates:", res.Stats.Candidates)
	// Output: [Corl82a] exact: false candidates: 1
}

// ExampleSchema_Advise recommends the minimal index set for a workload
// (Section 7).
func ExampleSchema_Advise() {
	names, _, err := qof.BibTeX().Advise(
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(names)
	// Output: [Authors Last_Name Reference]
}

// ExampleNewSchemaBuilder defines a custom structuring schema through the
// public API and queries a file of that format.
func ExampleNewSchemaBuilder() {
	schema, err := qof.NewSchemaBuilder("Config").
		Terminal("Key", `[a-z]+`).
		Terminal("Value", `[^\n]+`).
		Rule("Config", qof.Rep("Setting", "")).
		Rule("Setting", qof.NT("Name"), qof.Lit("="), qof.NT("Val")).
		Rule("Name", qof.Term("Key")).
		Rule("Val", qof.Term("Value")).
		BindClass("Settings", "Setting").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	file, err := schema.Index("app.conf", "host = db7.example\nport = 5432\nhost = backup9\n")
	if err != nil {
		log.Fatal(err)
	}
	res, err := file.Query(`SELECT s.Val FROM Settings s WHERE s.Name = "host"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Values)
	// Output: [db7.example backup9]
}
