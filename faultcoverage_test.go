package qof_test

// Failpoint-coverage gate: every failpoint declared in the
// internal/faultinject const block must be listed in Catalog() and
// exercised by the fault matrix. The const block is parsed from source, so
// a failpoint added as a const but forgotten in Catalog() — which the
// matrix iterates — fails here instead of silently skipping the gate.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"

	"qof/internal/faultinject"
)

// failpointConsts parses internal/faultinject/faultinject.go and returns
// every string-valued constant: const identifier → failpoint name.
func failpointConsts(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/faultinject/faultinject.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing faultinject source: %v", err)
	}
	out := make(map[string]string)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquoting %s: %v", lit.Value, err)
				}
				out[name.Name] = val
			}
		}
	}
	return out
}

func TestFailpointCoverage(t *testing.T) {
	consts := failpointConsts(t)
	if len(consts) == 0 {
		t.Fatal("no string constants found in faultinject source; the parser lost the catalog")
	}
	catalog := make(map[string]bool)
	for _, name := range faultinject.Catalog() {
		catalog[name] = true
	}

	// Every declared failpoint const is in Catalog(), and vice versa.
	values := make(map[string]string) // failpoint name → const identifier
	for ident, val := range consts {
		if !catalog[val] {
			t.Errorf("failpoint const %s = %q is missing from Catalog()", ident, val)
		}
		values[val] = ident
	}
	for name := range catalog {
		if _, ok := values[name]; !ok {
			t.Errorf("Catalog() entry %q has no declared const in faultinject.go", name)
		}
	}

	// Every catalog failpoint is exercised by the fault matrix: its const
	// identifier must appear in faultmatrix_test.go (the matrix references
	// failpoints as faultinject.<Ident>).
	src, err := os.ReadFile("faultmatrix_test.go")
	if err != nil {
		t.Fatalf("reading fault matrix source: %v", err)
	}
	matrix := string(src)
	for name, ident := range values {
		if !strings.Contains(matrix, "faultinject."+ident) {
			t.Errorf("failpoint %s (%q) never appears in faultmatrix_test.go; add a matrix case", ident, name)
		}
	}
}
