// Logmining: querying log files as a database — one of the semi-structured
// sources the paper's introduction motivates. Shows structured selections
// grep cannot express, plus the effect of indexing only what the workload
// needs.
//
//	go run ./examples/logmining
package main

import (
	"fmt"
	"log"
	"time"

	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/logs"
	"qof/internal/scan"
	"qof/internal/text"
	"qof/internal/xsql"
)

func main() {
	cfg := logs.DefaultConfig(5000)
	content, st := logs.Generate(cfg)
	doc := text.NewDocument("app.log", content)
	cat := logs.Catalog()
	fmt.Printf("log: %d entries, %d KB (%d errors, %d nginx entries, %d nginx errors)\n\n",
		st.NumEntries, doc.Len()/1024, st.Errors, st.TargetEntries, st.TargetErrors)

	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(cat, in)

	run := func(src string) {
		q := xsql.MustParse(src)
		start := time.Now()
		res, err := eng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\n   %d results in %v (candidates %d, parsed %d)\n\n",
			src, res.Stats.Results, time.Since(start).Round(time.Microsecond),
			res.Stats.Candidates, res.Stats.Parsed)
	}
	// Errors of one program: a structural conjunction "grep ERROR | grep
	// nginx" gets wrong (either word may come from the message text).
	run(`SELECT e FROM Entries e WHERE e.Level = "ERROR" AND e.Proc.Program = "nginx"`)
	// Messages mentioning a host, whatever the level.
	run(`SELECT e.Message FROM Entries e WHERE e.Message CONTAINS "host07"`)
	// Any field mentioning nginx, via a path variable.
	run(`SELECT e FROM Entries e WHERE e.*X.Program = "nginx"`)

	// Contrast with grep: counts word occurrences anywhere, including
	// message texts that merely mention the word.
	g := scan.Grep(doc, "ERROR")
	fmt.Printf("grep ERROR: %d occurrences scanning %d KB — cannot tell levels from message text\n\n",
		g.Occurrences, g.BytesScanned/1024)

	// A dashboard that only filters by level needs just two indexes.
	lean, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{
		Names: []string{logs.NTEntry, logs.NTLevel},
	})
	if err != nil {
		log.Fatal(err)
	}
	engLean := engine.New(cat, lean)
	q := xsql.MustParse(`SELECT e FROM Entries e WHERE e.Level = "ERROR"`)
	start := time.Now()
	res, err := engLean.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lean index {Entry, Level} (%d KB instead of %d KB): %d errors in %v, exact=%v\n",
		lean.SizeBytes()/1024, in.SizeBytes()/1024,
		res.Stats.Results, time.Since(start).Round(time.Microsecond), res.Stats.Exact)
}
