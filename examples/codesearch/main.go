// Codesearch: querying source code as a database — the paper reports that
// the Hy+/PAT combination was used for "querying and visualization of
// software engineering data". Demonstrates the public API on the built-in
// source-code schema: call-graph style selections, signature searches and
// comment search.
//
//	go run ./examples/codesearch
package main

import (
	"fmt"
	"log"

	"qof"
	"qof/internal/srccode"
)

func main() {
	cfg := srccode.DefaultConfig(400)
	content, st := srccode.Generate(cfg)
	schema := qof.SourceCode()
	file, err := schema.Index("project.src", content)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("code base: %d declarations, %d KB; %d functions call parse()\n\n",
		st.Decls, len(content)/1024, st.FuncsCalling)

	show := func(src string) *qof.Results {
		res, err := file.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\n   %d results (candidates %d, parsed %d, exact=%v)\n",
			src, res.Len(), res.Stats.Candidates, res.Stats.Parsed, res.Stats.Exact)
		for i, v := range res.Values {
			if i == 4 {
				fmt.Printf("     ... (%d more)\n", len(res.Values)-4)
				break
			}
			fmt.Printf("     %s\n", v)
		}
		fmt.Println()
		return res
	}

	// Who calls parse()?
	show(`SELECT d.FuncName FROM Decls d WHERE d.Stmt.Callee = "parse"`)
	// Functions taking a matrix parameter.
	show(`SELECT d.FuncName FROM Decls d WHERE d.Param.ParamType = "matrix"`)
	// Structs carrying an id field.
	show(`SELECT d.TypeName FROM Decls d WHERE d.Field.FieldType = "id"`)
	// Comment search: which functions are documented as recursive?
	show(`SELECT d.FuncName FROM Decls d WHERE d.Stmt.Comment CONTAINS "recursive"`)
	// Wildcard: any identifier equal to reduce, wherever it appears.
	show(`SELECT d.FuncName FROM Decls d WHERE d.*X.Callee = "reduce"`)

	// The advisor sizes the index for this workload.
	names, report, err := schema.Advise(
		`SELECT d FROM Decls d WHERE d.Stmt.Callee = "parse"`,
		`SELECT d FROM Decls d WHERE d.Field.FieldType = "id"`,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor: index %v\n%s", names, report)
}
