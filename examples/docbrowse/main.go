// Docbrowse: nested documents with self-nested sections — the cyclic-RIG
// case. Shows the region algebra directly (innermost/outermost, direct vs
// transitive inclusion) and the paper's Section 5.3 closure queries.
//
//	go run ./examples/docbrowse
package main

import (
	"fmt"
	"log"
	"time"

	"qof/internal/algebra"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/scan"
	"qof/internal/sgml"
	"qof/internal/text"
	"qof/internal/xsql"
)

func main() {
	cfg := sgml.DefaultConfig(6, 3)
	content, st := sgml.Generate(cfg)
	doc := text.NewDocument("manual.sgml", content)
	cat := sgml.Catalog()
	fmt.Printf("document: %d sections (max depth %d), %d paragraphs, %d KB; %d paragraphs contain \"needle\"\n\n",
		st.Sections, st.MaxDepth, st.Paras, doc.Len()/1024, st.TargetParas)

	in, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		log.Fatal(err)
	}

	// The RIG is cyclic: sections nest in sections.
	fmt.Println("region inclusion graph:")
	fmt.Println(cat.RIG)
	fmt.Println()

	// Raw region algebra: the building blocks of every query plan.
	ev := algebra.NewEvaluator(in)
	for _, src := range []string{
		`outermost(Section)`,                  // chapters
		`innermost(Section)`,                  // leaf sections
		`Section >d Section`,                  // sections with a direct subsection
		`Section > contains(Para, "needle")`,  // closure: needle anywhere below
		`Section >d contains(Para, "needle")`, // needle in one of the section's own paragraphs
		`Title < innermost(Section)`,          // titles of leaf sections
	} {
		e := algebra.MustParse(src)
		set, err := ev.Eval(e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-45s -> %d regions\n", algebra.Pretty(e), set.Len())
	}
	fmt.Println()

	// The closure query through the full query engine, against the
	// recursive database traversal.
	eng := engine.New(cat, in)
	q := xsql.MustParse(`SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "needle"`)
	start := time.Now()
	res, err := eng.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	engineTime := time.Since(start)
	start = time.Now()
	base, err := scan.FullScan(cat, doc, q)
	if err != nil {
		log.Fatal(err)
	}
	scanTime := time.Since(start)
	fmt.Printf("closure query %s:\n  engine: %d sections in %v\n  full parse+traverse: %d sections in %v\n",
		q, res.Stats.Results, engineTime.Round(time.Microsecond),
		len(base.Objects), scanTime.Round(time.Microsecond))

	// Titles of the sections that contain the needle directly or below.
	proj := xsql.MustParse(`SELECT s.Title FROM Sections s WHERE s.*X.Para CONTAINS "needle"`)
	pres, err := eng.Execute(proj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst titles: ")
	for i, s := range pres.Strings {
		if i == 5 {
			fmt.Printf("... (%d more)", len(pres.Strings)-5)
			break
		}
		fmt.Printf("%q ", s)
	}
	fmt.Println()
}
