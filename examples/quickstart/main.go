// Quickstart: view a BIBTEX file as a database and query it through the
// text index — the paper's Section 2 walkthrough on its Figure 1 entry,
// written against the public qof API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qof"
	"qof/internal/bibtex"
)

func main() {
	// A small bibliography: the paper's sample entry plus generated ones
	// where Chang appears only as an editor.
	cfg := bibtex.DefaultConfig(3)
	cfg.TargetAuthorShare = 0
	cfg.TargetEditorShare = 1 // Chang edits every generated reference
	generated, _ := bibtex.Generate(cfg)
	content := bibtex.SampleEntry + generated

	schema := qof.BibTeX()
	file, err := schema.Index("quickstart.bib", content)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's query: references where Chang is one of the AUTHORS.
	// Editor-only Changs must not qualify.
	const q = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`
	res, err := file.Query(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", q)
	fmt.Println()
	fmt.Print(res.Explain())
	fmt.Println()
	fmt.Printf("matched %d of 4 references (Chang edits the other %d, which correctly do not match):\n\n",
		res.Len(), 4-res.Len())
	for _, span := range res.Spans {
		fmt.Println(span.Text)
	}
	fmt.Printf("\nexecution: %d candidate regions from the index, %d regions parsed (%d of %d bytes)\n\n",
		res.Stats.Candidates, res.Stats.Parsed, res.Stats.ParsedBytes, len(content))

	// The same data through the region algebra directly.
	spans, err := file.Eval(`equals(Last_Name, "Chang") < Authors`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region algebra: %d author Last_Name region(s) equal to Chang\n", len(spans))
}
