// Bibliography: the shared-bibliographies scenario from the paper's
// introduction — a large generated bibliography queried with selections,
// boolean criteria, joins, projections and path variables, under full and
// partial indexing, with the Section 7 advisor closing the loop.
//
//	go run ./examples/bibliography
package main

import (
	"fmt"
	"log"
	"time"

	"qof/internal/advisor"
	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/scan"
	"qof/internal/text"
	"qof/internal/xsql"
)

func main() {
	cfg := bibtex.DefaultConfig(2000)
	cfg.TargetAuthorShare = 0.02
	cfg.TargetEditorShare = 0.08
	content, st := bibtex.Generate(cfg)
	doc := text.NewDocument("bibliography.bib", content)
	cat := bibtex.Catalog()
	fmt.Printf("corpus: %d references, %d KB (Chang authors %d, edits %d)\n\n",
		st.NumRefs, doc.Len()/1024, st.TargetAsAuthor, st.TargetAsEditor)

	full, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(cat, full)

	queries := []string{
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
		`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang" AND NOT r.Editors.Name.Last_Name = "Corliss"`,
		`SELECT r.Key FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`,
		`SELECT r.Title FROM References r WHERE r.*X.Last_Name = "Chang" AND r.Abstract CONTAINS "taylor"`,
		`SELECT r.Authors.Name.Last_Name FROM References r WHERE r.Keywords.Keyword CONTAINS "convergence"`,
	}
	for _, src := range queries {
		q := xsql.MustParse(src)
		start := time.Now()
		res, err := eng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("Q: %s\n   %d results in %v (candidates %d, parsed %d regions, exact=%v, join-fast=%v)\n",
			src, res.Stats.Results, elapsed.Round(time.Microsecond),
			res.Stats.Candidates, res.Stats.Parsed, res.Stats.Exact, res.Stats.JoinFast)
		if res.Projected {
			for i, s := range res.Strings {
				if i == 3 {
					fmt.Printf("     ... (%d more)\n", len(res.Strings)-3)
					break
				}
				fmt.Printf("     %s\n", s)
			}
		}
		fmt.Println()
	}

	// Compare against the standard database implementation on the first
	// query: parse everything, load, filter.
	q := xsql.MustParse(queries[0])
	start := time.Now()
	base, err := scan.FullScan(cat, doc, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (parse whole file + load database): %d results in %v, %d objects built\n\n",
		len(base.Objects), time.Since(start).Round(time.Microsecond), base.ObjectsSeen)

	// Partial indexing: the Section 6.1 choice cannot tell authors from
	// editors, so it parses a candidate superset — still far less than
	// the whole file.
	partial, _, err := cat.Grammar.BuildInstance(doc, grammar.IndexSpec{
		Names: []string{bibtex.NTReference, bibtex.NTKey, bibtex.NTLastName},
	})
	if err != nil {
		log.Fatal(err)
	}
	engP := engine.New(cat, partial)
	res, err := engP.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial index {Reference, Key, Last_Name}: %d results, %d candidates parsed (%d of %d bytes)\n\n",
		res.Stats.Results, res.Stats.Candidates, res.Stats.ParsedBytes, doc.Len())

	// Let the advisor pick the minimal index set for this workload.
	var parsed []*xsql.Query
	for _, src := range queries {
		parsed = append(parsed, xsql.MustParse(src))
	}
	rec, err := advisor.Recommend(cat, parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rec)
}
