//go:build race

package qof_test

import "time"

// The race detector multiplies per-iteration cost by 5-10x, so the
// cancellation-latency bound the acceptance criterion states for normal
// builds is scaled accordingly here.
const deadlineLatencyBound = 400 * time.Millisecond
