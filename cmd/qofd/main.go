// Command qofd is the sharded multi-tenant query daemon: it indexes a set
// of files under one of the built-in schemas, hashes them across N engine
// shards, and serves XSQL queries over HTTP/JSON with fair-share admission
// control, per-tenant budgets, partial-answer degradation and hot reload.
//
// Usage:
//
//	qofd -domain bibtex [-addr :8080] [-shards 4] [flags] FILE...
//	qofd -domain logs -dir /var/corpora/logs
//
// Endpoints:
//
//	POST /query    {"query": "SELECT ...", "tenant": "...", "timeout_ms": N,
//	                "max_regions": N, "max_eval_bytes": N}
//	GET  /query?q=SELECT+...&tenant=...
//	GET  /healthz  liveness + current epoch
//	GET  /metrics  counters, latency quantiles, per-tenant accounting
//	POST /reload   re-read the sources and publish them as the next epoch
//
// A query answered by a sharded daemon is byte-identical to the same query
// against a single corpus holding every file; see docs/SERVING.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"syscall"
	"time"

	"qof"
	"qof/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "qofd: %v\n", err)
		os.Exit(1)
	}
}

// schemaFor maps a -domain name onto its facade schema.
func schemaFor(name string) (*qof.Schema, error) {
	switch name {
	case "bibtex":
		return qof.BibTeX(), nil
	case "logs":
		return qof.Logs(), nil
	case "sgml":
		return qof.SGML(), nil
	case "src":
		return qof.SourceCode(), nil
	}
	return nil, fmt.Errorf("unknown domain %q (have bibtex, logs, sgml, src)", name)
}

// run is the daemon body, separated from main so tests can drive it with a
// cancelable context and capture the startup line (which carries the bound
// address when -addr picks port 0).
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("qofd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	dom := fs.String("domain", "bibtex", "file format: bibtex, logs, sgml, src")
	shards := fs.Int("shards", 1, "engine shards to place documents across")
	replicas := fs.Int("replicas", 2, "engine replicas per document (clamped to shards; 1 disables replication)")
	hedgeAfter := fs.Duration("hedge-after", 0, "delay before hedging a slow replica attempt (0 = adaptive p99, negative disables)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive replica faults that open its circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before a half-open probe")
	par := fs.Int("parallelism", runtime.GOMAXPROCS(0), "files evaluated concurrently within each shard")
	maxInflight := fs.Int("max-inflight", 64, "queries executing at once before shedding")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-query deadline")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-shard deadline; a slow shard degrades instead of stalling the query (0 = none)")
	fileTimeout := fs.Duration("file-timeout", 0, "per-file deadline within a shard (0 = none)")
	maxRegions := fs.Int("max-regions", 0, "default per-file region budget (0 = unlimited)")
	maxBytes := fs.Int("max-bytes", 0, "default per-file parsed-bytes budget (0 = unlimited)")
	materializing := fs.Bool("materializing", false, "use the materializing reference executor")
	shared := fs.Bool("shared", false, "share work across concurrent queries (batched scans, cross-query CSE, parse dedup)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
	dir := fs.String("dir", "", "serve every regular file in this directory (instead of positional FILEs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	schema, err := schemaFor(*dom)
	if err != nil {
		return err
	}
	paths := fs.Args()
	if (*dir == "") == (len(paths) == 0) {
		return errors.New("usage: qofd -domain D [flags] FILE...  |  qofd -domain D [flags] -dir DIR")
	}

	// load re-reads the corpus sources; it runs once at startup and again on
	// every POST /reload, so edits to the files land as the next epoch.
	load := func(ctx context.Context) (map[string]string, error) {
		list := paths
		if *dir != "" {
			entries, err := os.ReadDir(*dir)
			if err != nil {
				return nil, err
			}
			list = nil
			for _, e := range entries {
				if e.Type().IsRegular() {
					list = append(list, filepath.Join(*dir, e.Name()))
				}
			}
			sort.Strings(list)
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("no files to serve")
		}
		files := make(map[string]string, len(list))
		for _, p := range list {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			data, err := os.ReadFile(p)
			if err != nil {
				return nil, err
			}
			name := filepath.Base(p)
			if _, dup := files[name]; dup {
				return nil, fmt.Errorf("duplicate document name %q", name)
			}
			files[name] = string(data)
		}
		return files, nil
	}

	srv, err := serve.New(serve.Config{
		Schema:           schema,
		Shards:           *shards,
		Replicas:         *replicas,
		HedgeAfter:       *hedgeAfter,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Parallelism:      *par,
		Materializing:    *materializing,
		SharedExecution:  *shared,
		MaxInflight:      *maxInflight,
		DefaultTimeout:   *timeout,
		ShardTimeout:     *shardTimeout,
		FileTimeout:      *fileTimeout,
		DefaultLimits:    serve.Limits{MaxRegions: *maxRegions, MaxEvalBytes: *maxBytes},
		RetryAfter:       *retryAfter,
		Reload:           load,
	})
	if err != nil {
		return err
	}
	files, err := load(ctx)
	if err != nil {
		return err
	}
	if _, err := srv.PublishContext(ctx, files); err != nil {
		return fmt.Errorf("indexing corpus: %w", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	r := *replicas
	if r > *shards {
		r = *shards
	}
	if r < 1 {
		r = 1
	}
	fmt.Fprintf(stdout, "qofd: %d files, %d shards x%d replicas, domain %s, epoch %d on http://%s\n",
		len(files), *shards, r, *dom, srv.Epoch(), ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(sctx)
	case err := <-errc:
		return err
	}
}
