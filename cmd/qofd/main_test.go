package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"qof/internal/bibtex"
)

// syncBuffer lets the test poll run's startup line while run keeps writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRe = regexp.MustCompile(`http://([0-9.:]+)`)

// startDaemon runs the daemon on an ephemeral port over the given files and
// returns its base URL; shutdown and error checking hook into t.Cleanup.
func startDaemon(t *testing.T, args []string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("run returned %v after shutdown", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not shut down")
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1]
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited during startup: %v\noutput: %s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed its address; output: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func writeCorpus(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		p := filepath.Join(dir, "doc-"+string(rune('a'+i))+".bib")
		if err := os.WriteFile(p, []byte(bibtex.SampleEntry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const daemonQuery = `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`

// TestDaemonEndToEnd boots qofd over a directory corpus, queries it through
// the real HTTP listener, reloads after editing a file on disk, and shuts
// down cleanly on context cancellation.
func TestDaemonEndToEnd(t *testing.T) {
	dir := writeCorpus(t, 3)
	base := startDaemon(t, []string{"-domain", "bibtex", "-shards", "2", "-dir", dir})

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
		Files  int    `json:"files"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Epoch != 1 || health.Files != 3 {
		t.Fatalf("healthz = %+v", health)
	}

	resp, err = http.Get(base + "/query?q=" + url.QueryEscape(daemonQuery))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Complete bool `json:"complete"`
		Hits     []struct {
			File string `json:"file"`
		} `json:"hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !env.Complete || len(env.Hits) != 3 {
		t.Fatalf("query: status=%d complete=%v hits=%d", resp.StatusCode, env.Complete, len(env.Hits))
	}

	// Add a fourth file on disk; /reload publishes it as epoch 2.
	if err := os.WriteFile(filepath.Join(dir, "doc-z.bib"), []byte(bibtex.SampleEntry), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status=%d body=%s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/query?q=" + url.QueryEscape(daemonQuery))
	if err != nil {
		t.Fatal(err)
	}
	var env2 struct {
		Epoch uint64 `json:"epoch"`
		Hits  []any  `json:"hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env2.Epoch != 2 || len(env2.Hits) != 4 {
		t.Fatalf("post-reload query: epoch=%d hits=%d, want 2/4", env2.Epoch, len(env2.Hits))
	}
}

// TestDaemonPositionalFiles serves explicit file arguments.
func TestDaemonPositionalFiles(t *testing.T) {
	dir := writeCorpus(t, 2)
	base := startDaemon(t, []string{"-domain", "bibtex",
		filepath.Join(dir, "doc-a.bib"), filepath.Join(dir, "doc-b.bib")})
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Files  int `json:"files"`
		Shards int `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Files != 2 || m.Shards != 1 {
		t.Fatalf("metrics files=%d shards=%d, want 2/1", m.Files, m.Shards)
	}
}

// TestDaemonReplicationFlags boots a replicated daemon and checks that the
// -replicas, -hedge-after and breaker flags land in the serving config: the
// startup line reports the replica count, /metrics exposes it with the
// hedging and breaker counters, and /healthz lists per-shard breaker state.
func TestDaemonReplicationFlags(t *testing.T) {
	dir := writeCorpus(t, 4)
	base := startDaemon(t, []string{"-domain", "bibtex", "-shards", "2", "-replicas", "2",
		"-hedge-after", "5ms", "-breaker-threshold", "3", "-breaker-cooldown", "200ms", "-dir", dir})

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Shards       int     `json:"shards"`
		Replicas     int     `json:"replicas"`
		HedgeDelayMs float64 `json:"hedge_delay_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Shards != 2 || m.Replicas != 2 {
		t.Fatalf("metrics shards=%d replicas=%d, want 2/2", m.Shards, m.Replicas)
	}
	if m.HedgeDelayMs != 5 {
		t.Fatalf("metrics hedge_delay_ms = %v, want 5 (fixed -hedge-after)", m.HedgeDelayMs)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Replicas int `json:"replicas"`
		Shard    []struct {
			Breaker string `json:"breaker"`
		} `json:"shard_health"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Replicas != 2 || len(health.Shard) != 2 {
		t.Fatalf("healthz replicas=%d shard_health=%d entries, want 2/2", health.Replicas, len(health.Shard))
	}
	for i, sh := range health.Shard {
		if sh.Breaker != "closed" {
			t.Fatalf("shard %d breaker = %q at startup, want closed", i, sh.Breaker)
		}
	}
}

// TestDaemonBadInvocations: flag and corpus errors fail fast with a clear
// message instead of starting a broken daemon.
func TestDaemonBadInvocations(t *testing.T) {
	dir := writeCorpus(t, 1)
	for _, c := range []struct {
		name string
		args []string
		want string
	}{
		{"unknown domain", []string{"-domain", "nope", "-dir", dir}, "unknown domain"},
		{"no files", []string{"-domain", "bibtex"}, "usage"},
		{"both sources", []string{"-domain", "bibtex", "-dir", dir, "extra.bib"}, "usage"},
		{"missing file", []string{"-domain", "bibtex", "no-such-file.bib"}, "no-such-file"},
		{"empty dir", []string{"-domain", "bibtex", "-dir", t.TempDir()}, "no files"},
	} {
		err := run(context.Background(), c.args, io.Discard)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}
