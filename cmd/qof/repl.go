package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"qof/internal/algebra"
	"qof/internal/engine"
	"qof/internal/index"
	"qof/internal/xsql"
)

// cmdRepl runs an interactive session over one indexed file: XSQL queries,
// region-algebra expressions (prefixed with "="), and a few dot-commands.
func cmdRepl(args []string) error {
	fs := flag.NewFlagSet("repl", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	idxPath := fs.String("index", "", "persisted index file")
	names := fs.String("names", "", "region names to index when building in memory")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qof repl -domain D FILE")
	}
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	doc, err := readDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	spec, err := specFlags(*names, "")
	if err != nil {
		return err
	}
	in, err := buildOrLoad(d, doc, *idxPath, spec)
	if err != nil {
		return err
	}
	return repl(os.Stdin, os.Stdout, d, in)
}

// repl drives the interactive loop; split out for testing.
func repl(r io.Reader, w io.Writer, d domain, in *index.Instance) error {
	eng := engine.New(d.catalog(), in)
	ev := algebra.NewEvaluator(in)
	doc := in.Document()
	fmt.Fprintf(w, "qof repl — %s (%s, %d KB, %d region names)\n",
		doc.Name(), d.name, doc.Len()/1024, len(in.Names()))
	fmt.Fprintln(w, `type an XSQL query, "= <region expression>", or .help`)
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	explain := false
	for {
		fmt.Fprint(w, "qof> ")
		if !scanner.Scan() {
			fmt.Fprintln(w)
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit":
			return nil
		case line == ".help":
			fmt.Fprintln(w, `commands:
  SELECT ...            run an XSQL query
  = EXPR                evaluate a region-algebra expression
  .explain              toggle plan output
  .names                list indexed region names
  .rig                  print the region inclusion graph
  .classes              show class bindings
  .quit`)
		case line == ".explain":
			explain = !explain
			fmt.Fprintf(w, "explain %v\n", explain)
		case line == ".names":
			fmt.Fprintln(w, strings.Join(in.Names(), ", "))
		case line == ".rig":
			fmt.Fprintln(w, d.catalog().RIG)
		case line == ".classes":
			fmt.Fprintln(w, d.classes)
		case strings.HasPrefix(line, "="):
			runReplExpr(w, ev, doc.Content(), strings.TrimSpace(line[1:]))
		default:
			runReplQuery(w, eng, doc.Content(), line, explain)
		}
	}
}

func runReplExpr(w io.Writer, ev *algebra.Evaluator, content, src string) {
	e, err := algebra.Parse(src)
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	start := time.Now()
	set, err := ev.Eval(e)
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	fmt.Fprintf(w, "%s -> %d regions in %v\n", algebra.Pretty(e), set.Len(), time.Since(start).Round(time.Microsecond))
	for i, r := range set.Regions() {
		if i == 10 {
			fmt.Fprintf(w, "  ... (%d more)\n", set.Len()-10)
			break
		}
		fmt.Fprintf(w, "  [%d,%d) %s\n", r.Start, r.End, snippet(content[r.Start:r.End]))
	}
}

func runReplQuery(w io.Writer, eng *engine.Engine, content, src string, explain bool) {
	q, err := xsql.Parse(src)
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	start := time.Now()
	res, err := eng.Execute(q)
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	elapsed := time.Since(start)
	if explain {
		fmt.Fprint(w, res.Plan.Explain())
	}
	if res.Projected {
		for i, s := range res.Strings {
			if i == 10 {
				fmt.Fprintf(w, "  ... (%d more)\n", len(res.Strings)-10)
				break
			}
			fmt.Fprintf(w, "  %s\n", s)
		}
	} else {
		for i, r := range res.Regions.Regions() {
			if i == 10 {
				fmt.Fprintf(w, "  ... (%d more)\n", res.Regions.Len()-10)
				break
			}
			fmt.Fprintf(w, "  [%d,%d) %s\n", r.Start, r.End, snippet(content[r.Start:r.End]))
		}
	}
	st := res.Stats
	fmt.Fprintf(w, "%d results in %v (candidates %d, parsed %d, exact=%v)\n",
		st.Results, elapsed.Round(time.Microsecond), st.Candidates, st.Parsed, st.Exact)
}

// snippet compresses a region's text to one short line.
func snippet(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 72 {
		s = s[:69] + "..."
	}
	return s
}

// cmdStats prints corpus and index statistics for a file.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	names := fs.String("names", "", "region names to index")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qof stats -domain D FILE")
	}
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	doc, err := readDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	spec, err := specFlags(*names, "")
	if err != nil {
		return err
	}
	start := time.Now()
	in, _, err := d.catalog().Grammar.BuildInstance(doc, spec)
	if err != nil {
		return err
	}
	buildTime := time.Since(start)
	fmt.Printf("file: %s (%d bytes)\n", doc.Name(), doc.Len())
	fmt.Printf("build: %v\n", buildTime.Round(time.Millisecond))
	fmt.Printf("words: %d occurrences, %d distinct\n", in.Words().TokenCount(), in.Words().WordCount())
	fmt.Printf("regions: %d across %d names (index ≈ %d KB)\n",
		in.RegionCount(), len(in.Names()), in.SizeBytes()/1024)
	for _, name := range in.Names() {
		set := in.MustRegion(name)
		total := 0
		for _, r := range set.Regions() {
			total += r.Len()
		}
		avg := 0
		if set.Len() > 0 {
			avg = total / set.Len()
		}
		scope := ""
		if wi := in.Scope(name); wi != "" {
			scope = " (scoped to " + wi + ")"
		}
		fmt.Printf("  %-14s %7d regions, avg %5d bytes%s\n", name, set.Len(), avg, scope)
	}
	return nil
}

// cmdDot renders the RIG as a Graphviz digraph (the paper's Hy+ companion
// system visualized exactly such graphs).
func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	names := fs.String("names", "", "project onto these indexed names first")
	fs.Parse(args)
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	g := d.catalog().RIG
	if *names != "" {
		g = g.Project(splitList(*names)...)
	}
	fmt.Println("digraph RIG {")
	fmt.Println("  rankdir=TB; node [shape=box, fontname=\"Helvetica\"];")
	for _, line := range strings.Split(g.String(), "\n") {
		if from, to, ok := strings.Cut(line, " -> "); ok {
			fmt.Printf("  %q -> %q;\n", from, to)
		}
	}
	fmt.Println("}")
	return nil
}
