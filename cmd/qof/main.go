// Command qof is the query-on-files CLI: it generates corpora in the
// built-in file formats, builds and persists region/word indexes, runs
// XSQL queries and raw region-algebra expressions, explains plans, prints
// parse trees and region inclusion graphs, and recommends index choices —
// the end-to-end workflow of "Optimizing Queries on Files" (SIGMOD 1994).
//
// Usage:
//
//	qof gen    -domain bibtex -n 1000 [-seed 7] [-o corpus.bib]
//	qof gen    -domain bibtex -sample
//	qof index  -domain bibtex corpus.bib [-names A,B] [-scoped Name:Within] -o corpus.qidx
//	qof query  -domain bibtex corpus.bib [FILE...] [-index corpus.qidx] [-explain] [-format json] 'SELECT ...'
//	qof eval   -domain bibtex corpus.bib [-names A,B] 'Reference > contains(Last_Name, "Chang")'
//	qof repl   -domain bibtex corpus.bib
//	qof tree   -domain bibtex corpus.bib
//	qof rig    -domain bibtex [-names A,B]
//	qof dot    -domain bibtex [-names A,B]
//	qof stats  -domain bibtex corpus.bib
//	qof advise -domain bibtex 'SELECT ...' ['SELECT ...' ...]
//
// Domains: bibtex, logs, sgml, src.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"qof/internal/advisor"
	"qof/internal/algebra"
	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/text"
	"qof/internal/xsql"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "index":
		err = cmdIndex(args)
	case "query":
		err = cmdQuery(args)
	case "eval":
		err = cmdEval(args)
	case "tree":
		err = cmdTree(args)
	case "rig":
		err = cmdRIG(args)
	case "dot":
		err = cmdDot(args)
	case "stats":
		err = cmdStats(args)
	case "repl":
		err = cmdRepl(args)
	case "advise":
		err = cmdAdvise(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "qof: unknown command %q\n\n", cmd)
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qof %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `qof - querying files through text indexes (Consens & Milo, SIGMOD 1994)

commands:
  gen     generate a synthetic corpus (or print the paper's Figure 1 sample)
  index   build a region/word index for a file and persist it
  query   run an XSQL query over a file (phase 1 on the index, phase 2 parses candidates)
  eval    evaluate a raw region-algebra expression
  tree    print the parse tree with regions (the paper's Figure 2/3)
  rig     print the region inclusion graph, optionally projected to an index choice
  dot     render the region inclusion graph as Graphviz
  stats   print corpus and index statistics
  repl    interactive queries and region expressions over one file
  advise  recommend which regions to index for a query workload (Section 7)

run 'qof <command> -h' for flags.`)
	os.Exit(2)
}

// specFlags parses -names and -scoped into an index spec.
func specFlags(names, scoped string) (grammar.IndexSpec, error) {
	var spec grammar.IndexSpec
	if names != "" {
		spec.Names = splitList(names)
	}
	if scoped != "" {
		for _, part := range splitList(scoped) {
			nm, within, ok := strings.Cut(part, ":")
			if !ok {
				return spec, fmt.Errorf("bad -scoped entry %q (want Name:Within)", part)
			}
			spec.Scoped = append(spec.Scoped, grammar.ScopedName{Name: nm, Within: within})
		}
	}
	return spec, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func readDoc(path string) (*text.Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return text.NewDocument(path, string(data)), nil
}

// buildOrLoad builds the instance per spec, or loads a persisted index.
func buildOrLoad(d domain, doc *text.Document, idxPath string, spec grammar.IndexSpec) (*index.Instance, error) {
	if idxPath != "" {
		f, err := os.Open(idxPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return index.Load(f, doc)
	}
	in, _, err := d.catalog().Grammar.BuildInstance(doc, spec)
	return in, err
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format: bibtex, logs, sgml")
	n := fs.Int("n", 100, "corpus size (references, entries, or nesting depth for sgml)")
	seed := fs.Int64("seed", 1994, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	sample := fs.Bool("sample", false, "print the domain's sample document instead")
	fs.Parse(args)
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	content := d.sample
	if !*sample {
		content = d.generate(*n, *seed)
	}
	if *out == "" {
		fmt.Print(content)
		return nil
	}
	return os.WriteFile(*out, []byte(content), 0o644)
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	names := fs.String("names", "", "region names to index (default: all non-terminals)")
	scoped := fs.String("scoped", "", "selective indexes, Name:Within[,Name:Within...]")
	out := fs.String("o", "", "index output file (required)")
	fs.Parse(args)
	if fs.NArg() != 1 || *out == "" {
		return fmt.Errorf("usage: qof index -domain D [-names ...] -o out.qidx FILE")
	}
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	doc, err := readDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	spec, err := specFlags(*names, *scoped)
	if err != nil {
		return err
	}
	in, _, err := d.catalog().Grammar.BuildInstance(doc, spec)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := in.Save(f); err != nil {
		return err
	}
	fmt.Printf("indexed %s: %d region names, %d regions, %d word occurrences -> %s\n",
		fs.Arg(0), len(in.Names()), in.RegionCount(), in.Words().TokenCount(), *out)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	idxPath := fs.String("index", "", "persisted index file (default: build in memory)")
	names := fs.String("names", "", "region names to index when building in memory")
	scoped := fs.String("scoped", "", "selective indexes, Name:Within[,...]")
	explain := fs.Bool("explain", false, "print the plan before the results")
	quiet := fs.Bool("quiet", false, "print only statistics, not result rows")
	format := fs.String("format", "text", "output format: text or json")
	timeout := fs.Duration("timeout", 0, "abort the query after this long (0 = no deadline)")
	maxRegions := fs.Int("max-regions", 0, "abort after producing this many index regions (0 = unlimited)")
	maxBytes := fs.Int("max-bytes", 0, "abort after parsing this many document bytes (0 = unlimited)")
	exec := fs.String("exec", "streaming", "executor: streaming (default) or materializing (the reference)")
	fs.Parse(args)
	if *exec != "streaming" && *exec != "materializing" {
		return fmt.Errorf("unknown -exec %q (want streaming or materializing)", *exec)
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("usage: qof query -domain D FILE [FILE...] 'SELECT ...'")
	}
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	spec, err := specFlags(*names, *scoped)
	if err != nil {
		return err
	}
	q, err := xsql.Parse(fs.Arg(fs.NArg() - 1))
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	lim := engine.Limits{MaxRegions: *maxRegions, MaxEvalBytes: *maxBytes}
	if fs.NArg() > 2 {
		// Several files: query the whole corpus (Section 2's shared
		// bibliographies scenario).
		if *idxPath != "" {
			return fmt.Errorf("-index applies to single-file queries")
		}
		corpus := engine.NewCorpus(d.catalog())
		corpus.Parallelism = runtime.GOMAXPROCS(0)
		corpus.Materializing = *exec == "materializing"
		var docs []*text.Document
		for _, path := range fs.Args()[:fs.NArg()-1] {
			doc, err := readDoc(path)
			if err != nil {
				return err
			}
			docs = append(docs, doc)
		}
		if err := corpus.AddAllContext(ctx, docs, spec); err != nil {
			return err
		}
		res, err := corpus.ExecuteContext(ctx, q, engine.ExecOptions{Limits: lim})
		if err != nil {
			return err
		}
		for _, hit := range res.Hits {
			if *quiet {
				fmt.Printf("%s: %d results\n", hit.File, hit.Stats.Results)
				continue
			}
			for _, s := range hit.Strings {
				fmt.Printf("%s: %s\n", hit.File, s)
			}
			for _, r := range hit.Regions.Regions() {
				if !res.Projected {
					fmt.Printf("%s: [%d,%d)\n", hit.File, r.Start, r.End)
				}
			}
		}
		st := res.Stats
		fmt.Printf("files=%d results=%d candidates=%d parsed=%d parsed_bytes=%d\n",
			corpus.Len(), st.Results, st.Candidates, st.Parsed, st.ParsedBytes)
		return nil
	}
	doc, err := readDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	in, err := buildOrLoad(d, doc, *idxPath, spec)
	if err != nil {
		return err
	}
	eng := engine.New(d.catalog(), in)
	eng.Materializing = *exec == "materializing"
	res, err := eng.ExecuteContext(ctx, q, lim)
	if err != nil {
		return err
	}
	if *format == "json" {
		return writeJSONResult(os.Stdout, doc, q, res, *explain)
	}
	if *format != "text" {
		return fmt.Errorf("unknown -format %q (want text or json)", *format)
	}
	if *explain {
		fmt.Print(res.Plan.Explain())
	}
	if !*quiet {
		if res.Projected {
			for _, s := range res.Strings {
				fmt.Println(s)
			}
		} else {
			for i, r := range res.Regions.Regions() {
				fmt.Printf("-- %s at [%d,%d)\n", q.Select.Var, r.Start, r.End)
				fmt.Println(strings.TrimSpace(doc.Slice(r.Start, r.End)))
				_ = i
			}
		}
	}
	st := res.Stats
	fmt.Printf("results=%d candidates=%d parsed=%d parsed_bytes=%d peak_bytes=%d exact=%v index_only=%v full_scan=%v\n",
		st.Results, st.Candidates, st.Parsed, st.ParsedBytes, st.PeakBytes, st.Exact, st.IndexOnly, st.FullScan)
	fmt.Printf("compile=%v index_eval=%v parse_filter=%v\n",
		st.CompileTime.Round(time.Microsecond), st.Phase1Time.Round(time.Microsecond),
		st.Phase2Time.Round(time.Microsecond))
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	idxPath := fs.String("index", "", "persisted index file")
	names := fs.String("names", "", "region names to index when building in memory")
	showText := fs.Bool("text", false, "print each region's text")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: qof eval -domain D FILE 'EXPR'")
	}
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	doc, err := readDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	spec, err := specFlags(*names, "")
	if err != nil {
		return err
	}
	in, err := buildOrLoad(d, doc, *idxPath, spec)
	if err != nil {
		return err
	}
	expr, err := algebra.Parse(fs.Arg(1))
	if err != nil {
		return err
	}
	set, err := algebra.NewEvaluator(in).Eval(expr)
	if err != nil {
		return err
	}
	fmt.Printf("%s -> %d regions\n", algebra.Pretty(expr), set.Len())
	for _, r := range set.Regions() {
		if *showText {
			fmt.Printf("[%d,%d) %q\n", r.Start, r.End, doc.Slice(r.Start, r.End))
		} else {
			fmt.Printf("[%d,%d)\n", r.Start, r.End)
		}
	}
	return nil
}

func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	terms := fs.Bool("text", true, "show terminal text")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qof tree -domain D FILE")
	}
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	doc, err := readDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	tree, err := d.catalog().Grammar.Parse(doc)
	if err != nil {
		return err
	}
	src := ""
	if *terms {
		src = doc.Content()
	}
	fmt.Print(tree.Dump(src))
	return nil
}

func cmdRIG(args []string) error {
	fs := flag.NewFlagSet("rig", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	names := fs.String("names", "", "project the RIG onto these indexed names (Section 6.1)")
	fs.Parse(args)
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	g := d.catalog().RIG
	if *names != "" {
		g = g.Project(splitList(*names)...)
	}
	fmt.Println(g)
	return nil
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	dom := fs.String("domain", "bibtex", "file format")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: qof advise -domain D 'SELECT ...' ['SELECT ...' ...]")
	}
	d, err := lookupDomain(*dom)
	if err != nil {
		return err
	}
	var queries []*xsql.Query
	for _, src := range fs.Args() {
		q, err := xsql.Parse(src)
		if err != nil {
			return fmt.Errorf("query %q: %w", src, err)
		}
		queries = append(queries, q)
	}
	rec, err := advisor.Recommend(d.catalog(), queries)
	if err != nil {
		return err
	}
	fmt.Print(rec)
	return nil
}
