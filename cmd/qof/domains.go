package main

import (
	"fmt"

	"qof/internal/bibtex"
	"qof/internal/compile"
	"qof/internal/logs"
	"qof/internal/sgml"
	"qof/internal/srccode"
)

// domain bundles a structuring schema with its generator, so every
// subcommand can be pointed at one of the built-in file formats.
type domain struct {
	name     string
	catalog  func() *compile.Catalog
	generate func(n int, seed int64) string
	sample   string
	classes  string // help text: class bindings
}

var domains = map[string]domain{
	"bibtex": {
		name:    "bibtex",
		catalog: bibtex.Catalog,
		generate: func(n int, seed int64) string {
			cfg := bibtex.DefaultConfig(n)
			cfg.Seed = seed
			out, _ := bibtex.Generate(cfg)
			return out
		},
		sample:  bibtex.SampleEntry,
		classes: "References (Reference regions)",
	},
	"logs": {
		name:    "logs",
		catalog: logs.Catalog,
		generate: func(n int, seed int64) string {
			cfg := logs.DefaultConfig(n)
			cfg.Seed = seed
			out, _ := logs.Generate(cfg)
			return out
		},
		sample:  "[1994-05-24 12:00:01] ERROR nginx(233): connection refused from host42 code=7\n",
		classes: "Entries (Entry regions)",
	},
	"src": {
		name:    "src",
		catalog: srccode.Catalog,
		generate: func(n int, seed int64) string {
			cfg := srccode.DefaultConfig(n)
			cfg.Seed = seed
			out, _ := srccode.Generate(cfg)
			return out
		},
		sample:  "func compute(alpha int) {\n  # adds things\n  do helper(alpha);\n}\n",
		classes: "Decls (Decl regions: functions and structs)",
	},
	"sgml": {
		name:    "sgml",
		catalog: sgml.Catalog,
		generate: func(n int, seed int64) string {
			// n is interpreted as nesting depth for documents.
			cfg := sgml.DefaultConfig(max(n, 2), 3)
			cfg.Seed = seed
			out, _ := sgml.Generate(cfg)
			return out
		},
		sample:  "<doc><sec><t>intro</t><p>hello world</p></sec></doc>",
		classes: "Docs (Doc regions), Sections (Section regions)",
	},
}

func lookupDomain(name string) (domain, error) {
	d, ok := domains[name]
	if !ok {
		return domain{}, fmt.Errorf("unknown domain %q (have bibtex, logs, sgml, src)", name)
	}
	return d, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
