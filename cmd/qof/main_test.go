package main

import (
	"reflect"
	"testing"

	"qof/internal/text"
)

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Error("empty list")
	}
}

func TestSpecFlags(t *testing.T) {
	spec, err := specFlags("Reference,Last_Name", "Name:Authors,Last_Name:Editors")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Names) != 2 || spec.Names[0] != "Reference" {
		t.Errorf("names = %v", spec.Names)
	}
	if len(spec.Scoped) != 2 || spec.Scoped[0].Name != "Name" || spec.Scoped[0].Within != "Authors" {
		t.Errorf("scoped = %v", spec.Scoped)
	}
	if _, err := specFlags("", "bad-entry"); err == nil {
		t.Error("bad scoped entry accepted")
	}
	empty, err := specFlags("", "")
	if err != nil || empty.Names != nil || empty.Scoped != nil {
		t.Errorf("empty spec = %+v, %v", empty, err)
	}
}

func TestLookupDomain(t *testing.T) {
	for _, name := range []string{"bibtex", "logs", "sgml", "src"} {
		d, err := lookupDomain(name)
		if err != nil {
			t.Errorf("lookupDomain(%s): %v", name, err)
			continue
		}
		if d.catalog() == nil || d.generate(3, 1) == "" || d.sample == "" {
			t.Errorf("domain %s incomplete", name)
		}
	}
	if _, err := lookupDomain("nope"); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestDomainSamplesParse(t *testing.T) {
	for name, d := range domains {
		cat := d.catalog()
		if _, err := cat.Grammar.Parse(docOf(name+"-sample", d.sample)); err != nil {
			t.Errorf("domain %s: sample does not parse: %v", name, err)
		}
		if _, err := cat.Grammar.Parse(docOf(name+"-gen", d.generate(4, 9))); err != nil {
			t.Errorf("domain %s: generated corpus does not parse: %v", name, err)
		}
	}
}

func docOf(name, content string) *text.Document { return text.NewDocument(name, content) }
