package main

import (
	"encoding/json"
	"strings"
	"testing"

	"qof/internal/engine"
	"qof/internal/grammar"
	"qof/internal/text"
	"qof/internal/xsql"
)

func TestWriteJSONResult(t *testing.T) {
	d, err := lookupDomain("bibtex")
	if err != nil {
		t.Fatal(err)
	}
	doc := text.NewDocument("j.bib", d.generate(10, 3))
	in, _, err := d.catalog().Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(d.catalog(), in)

	// Projection query → values.
	q := xsql.MustParse(`SELECT r.Key FROM References r`)
	res, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := writeJSONResult(&out, doc, q, res, true); err != nil {
		t.Fatal(err)
	}
	var decoded jsonResult
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(decoded.Values) != 10 || decoded.Stats.Results != 10 {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Explain == "" {
		t.Error("explain requested but absent")
	}
	if decoded.Query == "" || len(decoded.Objects) != 0 {
		t.Errorf("shape: %+v", decoded)
	}

	// Whole-object query → spans.
	q2 := xsql.MustParse(`SELECT r FROM References r WHERE r.Key = "Key000002"`)
	res2, err := eng.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := writeJSONResult(&out, doc, q2, res2, false); err != nil {
		t.Fatal(err)
	}
	var decoded2 jsonResult
	if err := json.Unmarshal([]byte(out.String()), &decoded2); err != nil {
		t.Fatal(err)
	}
	if len(decoded2.Objects) != 1 || !strings.Contains(decoded2.Objects[0].Text, "Key000002") {
		t.Errorf("objects = %+v", decoded2.Objects)
	}
	if decoded2.Explain != "" {
		t.Error("explain not requested but present")
	}
}
