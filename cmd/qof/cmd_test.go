package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCorpus generates a small bibtex corpus into dir and returns its path.
func writeCorpus(t *testing.T, dir string, n int, seed int64) string {
	t.Helper()
	d, err := lookupDomain("bibtex")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "corpus.bib")
	if err := os.WriteFile(path, []byte(d.generate(n, seed)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdGen(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "gen.bib")
	if err := cmdGen([]string{"-domain", "bibtex", "-n", "5", "-seed", "7", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "AUTHOR") {
		t.Errorf("generated corpus lacks entries:\n%.200s", data)
	}
	// -sample writes the built-in sample document instead.
	sample := filepath.Join(dir, "sample.bib")
	if err := cmdGen([]string{"-domain", "bibtex", "-sample", "-o", sample}); err != nil {
		t.Fatal(err)
	}
	if sd, _ := os.ReadFile(sample); len(sd) == 0 {
		t.Error("sample output empty")
	}
	if err := cmdGen([]string{"-domain", "nope"}); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestCmdIndexAndQuery(t *testing.T) {
	dir := t.TempDir()
	corpus := writeCorpus(t, dir, 20, 5)
	idx := filepath.Join(dir, "corpus.qidx")
	if err := cmdIndex([]string{"-domain", "bibtex", "-o", idx, corpus}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(idx); err != nil || st.Size() == 0 {
		t.Fatalf("index file: %v, %v", st, err)
	}
	// Query against the persisted index and against an in-memory build, on
	// both executors, projected and unprojected, text and JSON output.
	q := `SELECT r.Key FROM References r WHERE r.Year STARTS "19"`
	for _, args := range [][]string{
		{"-domain", "bibtex", "-index", idx, corpus, q},
		{"-domain", "bibtex", "-explain", corpus, q},
		{"-domain", "bibtex", "-exec", "materializing", corpus, q},
		{"-domain", "bibtex", "-format", "json", corpus, q},
		{"-domain", "bibtex", "-quiet", corpus, `SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`},
	} {
		if err := cmdQuery(args); err != nil {
			t.Errorf("cmdQuery(%v): %v", args, err)
		}
	}
	// Error paths: bad executor, bad format, missing args, unparsable query.
	for _, args := range [][]string{
		{"-domain", "bibtex", "-exec", "bogus", corpus, q},
		{"-domain", "bibtex", "-format", "bogus", corpus, q},
		{"-domain", "bibtex", corpus},
		{"-domain", "bibtex", corpus, "SELECT nonsense"},
	} {
		if err := cmdQuery(args); err == nil {
			t.Errorf("cmdQuery(%v) succeeded, want error", args)
		}
	}
	if err := cmdIndex([]string{"-domain", "bibtex", corpus}); err == nil {
		t.Error("cmdIndex without -o accepted")
	}
}

func TestCmdQueryCorpus(t *testing.T) {
	dir := t.TempDir()
	a := writeCorpus(t, dir, 10, 1)
	d, _ := lookupDomain("bibtex")
	b := filepath.Join(dir, "second.bib")
	if err := os.WriteFile(b, []byte(d.generate(10, 2)), 0o644); err != nil {
		t.Fatal(err)
	}
	q := `SELECT r.Key FROM References r WHERE r.Year STARTS "19"`
	if err := cmdQuery([]string{"-domain", "bibtex", a, b, q}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-domain", "bibtex", "-quiet", a, b,
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`}); err != nil {
		t.Fatal(err)
	}
	// -index is single-file only.
	if err := cmdQuery([]string{"-domain", "bibtex", "-index", "x.qidx", a, b, q}); err == nil {
		t.Error("-index accepted on a multi-file query")
	}
}

func TestCmdEvalTreeRIGDotStatsAdvise(t *testing.T) {
	dir := t.TempDir()
	corpus := writeCorpus(t, dir, 10, 3)
	if err := cmdEval([]string{"-domain", "bibtex", corpus, "outermost(Reference)"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-domain", "bibtex", "-text", corpus, `Reference > contains(Last_Name, "Chang")`}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-domain", "bibtex", corpus, "bogus("}); err == nil {
		t.Error("bad expression accepted")
	}
	if err := cmdTree([]string{"-domain", "bibtex", corpus}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRIG([]string{"-domain", "bibtex"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRIG([]string{"-domain", "bibtex", "-names", "Reference,Last_Name"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDot([]string{"-domain", "bibtex"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-domain", "bibtex", corpus}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdvise([]string{"-domain", "bibtex",
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdvise([]string{"-domain", "bibtex"}); err == nil {
		t.Error("cmdAdvise with no queries accepted")
	}
	if err := cmdAdvise([]string{"-domain", "bibtex", "SELECT nonsense"}); err == nil {
		t.Error("cmdAdvise with a bad query accepted")
	}
	// Missing-file errors surface instead of panicking.
	missing := filepath.Join(dir, "missing.bib")
	if err := cmdStats([]string{"-domain", "bibtex", missing}); err == nil {
		t.Error("cmdStats on a missing file accepted")
	}
	if err := cmdTree([]string{"-domain", "bibtex", missing}); err == nil {
		t.Error("cmdTree on a missing file accepted")
	}
}
