package main

import (
	"strings"
	"testing"

	"qof/internal/grammar"
	"qof/internal/text"
)

func TestReplSession(t *testing.T) {
	d, err := lookupDomain("bibtex")
	if err != nil {
		t.Fatal(err)
	}
	content := d.generate(20, 5)
	doc := text.NewDocument("session.bib", content)
	in, _, err := d.catalog().Grammar.BuildInstance(doc, grammar.IndexSpec{})
	if err != nil {
		t.Fatal(err)
	}
	script := strings.Join([]string{
		".help",
		".names",
		".rig",
		".classes",
		".explain",
		`SELECT r.Key FROM References r WHERE r.Year STARTS "19"`,
		`= outermost(Reference)`,
		`= bogus(`,
		`SELECT nonsense`,
		"",
		".quit",
	}, "\n") + "\n"
	var out strings.Builder
	if err := repl(strings.NewReader(script), &out, d, in); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"qof repl",
		"commands:",
		"Reference", // .names and .rig
		"explain true",
		"results in",    // query ran
		"-> 20 regions", // algebra expression
		"error:",        // both error paths
	} {
		if !strings.Contains(got, want) {
			t.Errorf("repl output missing %q:\n%s", want, got)
		}
	}
	// EOF without .quit also terminates cleanly.
	var out2 strings.Builder
	if err := repl(strings.NewReader(".names\n"), &out2, d, in); err != nil {
		t.Fatal(err)
	}
}

func TestSnippet(t *testing.T) {
	if got := snippet("a   b\n\tc"); got != "a b c" {
		t.Errorf("snippet = %q", got)
	}
	long := strings.Repeat("x", 100)
	if got := snippet(long); len(got) != 72 || !strings.HasSuffix(got, "...") {
		t.Errorf("snippet long = %q (%d)", got, len(got))
	}
}
