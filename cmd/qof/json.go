package main

import (
	"encoding/json"
	"io"

	"qof/internal/engine"
	"qof/internal/text"
	"qof/internal/xsql"
)

// jsonResult is the machine-readable form of a query outcome.
type jsonResult struct {
	Query   string     `json:"query"`
	Values  []string   `json:"values,omitempty"`
	Objects []jsonSpan `json:"objects,omitempty"`
	Stats   jsonStats  `json:"stats"`
	Explain string     `json:"explain,omitempty"`
}

type jsonSpan struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

type jsonStats struct {
	Results     int  `json:"results"`
	Candidates  int  `json:"candidates"`
	Parsed      int  `json:"parsed"`
	ParsedBytes int  `json:"parsed_bytes"`
	Exact       bool `json:"exact"`
	IndexOnly   bool `json:"index_only"`
	FullScan    bool `json:"full_scan"`
}

// writeJSONResult renders a query result as indented JSON.
func writeJSONResult(w io.Writer, doc *text.Document, q *xsql.Query, res *engine.Result, explain bool) error {
	out := jsonResult{
		Query: q.String(),
		Stats: jsonStats{
			Results:     res.Stats.Results,
			Candidates:  res.Stats.Candidates,
			Parsed:      res.Stats.Parsed,
			ParsedBytes: res.Stats.ParsedBytes,
			Exact:       res.Stats.Exact,
			IndexOnly:   res.Stats.IndexOnly,
			FullScan:    res.Stats.FullScan,
		},
	}
	if explain {
		out.Explain = res.Plan.Explain()
	}
	if res.Projected {
		out.Values = res.Strings
	} else {
		for _, r := range res.Regions.Regions() {
			out.Objects = append(out.Objects, jsonSpan{
				Start: r.Start, End: r.End, Text: doc.Slice(r.Start, r.End),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
