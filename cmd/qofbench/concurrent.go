package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qof/internal/bibtex"
	"qof/internal/engine"
	"qof/internal/experiments"
	"qof/internal/grammar"
	"qof/internal/xsql"
)

// The concurrent benchmark: a thundering herd — every client issues the
// same query at the same instant, query after query — against a large
// corpus indexed only at the Reference level, so every query pays for
// phase-2 parsing. Run twice, with shared execution off and on.
// Simultaneous arrival is the case the result cache cannot help with (it
// only serves executions that start after the first one completes;
// in-flight duplicates each pay full price) and exactly the case the
// shared-execution layer exists for: one client leads the evaluation and
// the parses while the rest wait for its answer. Every round rebuilds the
// engine so the herd always hits cold caches.

// concurrentQueries is the hot workload. Only Reference is indexed, so the
// field predicates all force candidate parsing; the CONTAINS atoms are the
// shape the batched multi-pattern scan answers from postings.
var concurrentHotQueries = []string{
	`SELECT r.Key FROM References r`,
	`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
	`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "Corliss"`,
	`SELECT r FROM References r WHERE r.Abstract CONTAINS "taylor"`,
	`SELECT r FROM References r WHERE r.Abstract CONTAINS "system"`,
	`SELECT r.Key FROM References r WHERE r.Publisher = "SIAM"`,
	`SELECT r FROM References r WHERE r.Title CONTAINS "Convergence"`,
}

// concurrentBench is the shared-vs-unshared herd comparison.
type concurrentBench struct {
	Refs    int      `json:"refs"`
	Clients int      `json:"clients"`
	Rounds  int      `json:"rounds"`
	Queries []string `json:"queries"`
	// Aggregate throughput across all clients and rounds, engine rebuilt
	// (cold caches) every round.
	UnsharedOpsSec float64 `json:"unshared_ops_sec"`
	SharedOpsSec   float64 `json:"shared_ops_sec"`
	// Speedup is shared over unshared aggregate throughput; the acceptance
	// bar for this section is ≥ 5.
	Speedup float64 `json:"speedup"`
	// The sharing the herd actually got (summed over all queries of the
	// shared leg): word atoms answered from batched scans, candidate sets
	// and subexpressions received from another query's in-flight
	// evaluation, and phase-2 parses deduplicated.
	SharedScans int64 `json:"shared_scans"`
	CSEHits     int64 `json:"cse_hits"`
	ParseDedups int64 `json:"parse_dedups"`
}

// runConcurrent measures the stampede.
func runConcurrent(quick bool) (concurrentBench, error) {
	refs, clients, rounds := 400, 16, 3
	if quick {
		refs, clients, rounds = 120, 12, 2
	}
	// Long abstracts make candidate parsing the dominant per-query cost —
	// the serving regime where duplicated in-flight work actually hurts.
	setup, err := experiments.NewBibtexSetup(refs, grammar.IndexSpec{Names: []string{bibtex.NTReference}},
		func(cfg *bibtex.Config) { cfg.AbstractWords = 150 })
	if err != nil {
		return concurrentBench{}, err
	}
	cb := concurrentBench{Refs: refs, Clients: clients, Rounds: rounds, Queries: concurrentHotQueries}
	queries := make([]*xsql.Query, len(concurrentHotQueries))
	for i, src := range concurrentHotQueries {
		q, err := xsql.Parse(src)
		if err != nil {
			return cb, err
		}
		if _, err := setup.Engine.Execute(q); err != nil {
			return cb, fmt.Errorf("hot query %q: %w", src, err)
		}
		queries[i] = q
	}
	for _, shared := range []bool{false, true} {
		var elapsed time.Duration
		var ops, scans, cse, dedups int64
		for r := 0; r < rounds; r++ {
			eng := engine.New(setup.Cat, setup.Instance)
			eng.Parallelism = 4
			if shared {
				eng.EnableSharedExecution()
			}
			errc := make(chan error, 1)
			start := time.Now()
			for _, q := range queries {
				var wg sync.WaitGroup
				gate := make(chan struct{})
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						<-gate
						res, err := eng.Execute(q)
						if err != nil {
							select {
							case errc <- err:
							default:
							}
							return
						}
						atomic.AddInt64(&ops, 1)
						atomic.AddInt64(&scans, int64(res.Stats.SharedScans))
						atomic.AddInt64(&cse, int64(res.Stats.CSEHits))
						atomic.AddInt64(&dedups, int64(res.Stats.ParseDedups))
					}()
				}
				close(gate)
				wg.Wait()
			}
			elapsed += time.Since(start)
			select {
			case err := <-errc:
				return cb, fmt.Errorf("concurrent (shared=%v) round %d: %w", shared, r, err)
			default:
			}
		}
		opsSec := 0.0
		if elapsed > 0 {
			opsSec = float64(ops) / elapsed.Seconds()
		}
		if shared {
			cb.SharedOpsSec = opsSec
			cb.SharedScans, cb.CSEHits, cb.ParseDedups = scans, cse, dedups
		} else {
			cb.UnsharedOpsSec = opsSec
		}
	}
	if cb.UnsharedOpsSec > 0 {
		cb.Speedup = cb.SharedOpsSec / cb.UnsharedOpsSec
	}
	return cb, nil
}
