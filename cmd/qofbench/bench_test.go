package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunJSONBench runs the quick benchmark end to end and checks the
// report's shape: every domain present, both passes measured, and the
// cached pass actually using the result cache.
func TestRunJSONBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := runJSONBench(path, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if !r.Quick || r.Rounds == 0 || r.Queries == 0 {
		t.Errorf("header wrong: %+v", r)
	}
	if len(r.Domains) != 3 {
		t.Fatalf("expected 3 domains, got %d", len(r.Domains))
	}
	for _, d := range r.Domains {
		if d.Baseline.OpsPerSec <= 0 || d.Cached.OpsPerSec <= 0 {
			t.Errorf("%s: zero throughput: %+v", d.Name, d)
		}
		if d.Baseline.ResultCacheHitRate != 0 {
			t.Errorf("%s: baseline pass used the result cache", d.Name)
		}
		if d.Cached.ResultCacheHitRate == 0 {
			t.Errorf("%s: cached pass never hit the result cache", d.Name)
		}
		if d.Baseline.PlanCacheHitRate == 0 {
			t.Errorf("%s: repeated workload never hit the plan cache", d.Name)
		}
		if d.Speedup <= 0 {
			t.Errorf("%s: speedup not computed", d.Name)
		}
		if d.Baseline.PeakBytes <= 0 {
			t.Errorf("%s: baseline pass recorded no peak bytes", d.Name)
		}
		if d.LimitKOpsSec <= 0 {
			t.Errorf("%s: LIMIT workload not measured", d.Name)
		}
	}
	s := r.Stress
	if s.Refs <= 0 || s.LimitK != benchLimitK || s.Query == "" {
		t.Errorf("stress header wrong: %+v", s)
	}
	if s.FullMaterializingMs <= 0 || s.LimitStreamingMs <= 0 {
		t.Errorf("stress legs not timed: %+v", s)
	}
	if s.TimeRatio <= 0 {
		t.Errorf("stress time ratio not computed: %+v", s)
	}
	// Peak accounting is deterministic, so the LIMIT leg's memory bar can
	// be asserted even in the quick configuration; timing is left to the
	// committed full-size report.
	if s.PeakRatio <= 0 || s.PeakRatio > 0.2 {
		t.Errorf("stress peak ratio %v outside (0, 0.2]: %+v", s.PeakRatio, s)
	}
	// The serving storm: every submission accounted for, shedding engaged,
	// some queries served, bounded tail latency, nothing leaked.
	sv := r.Serving
	if sv.Ok+sv.Shed != sv.Submitted || sv.Submitted != sv.Clients*2 {
		t.Errorf("serving books don't balance: %+v", sv)
	}
	if sv.Shed == 0 {
		t.Errorf("serving storm never shed at %dx oversubscription: %+v", sv.Clients/sv.MaxInflight, sv)
	}
	if sv.Ok == 0 || sv.QPS <= 0 {
		t.Errorf("serving storm served nothing: %+v", sv)
	}
	if sv.P999Ms <= 0 || sv.P999Ms > 30000 {
		t.Errorf("serving p999 %v ms unbounded: %+v", sv.P999Ms, sv)
	}
	if sv.P50Ms > sv.P999Ms {
		t.Errorf("serving quantiles inverted: %+v", sv)
	}
	if sv.GoroutineLeak != 0 {
		t.Errorf("serving storm leaked %d goroutines", sv.GoroutineLeak)
	}
	// The tail section: hedging must actually race (hedges sent and won)
	// and collapse the slow-shard tail to at most half the unhedged p999.
	tl := r.Tail
	if tl.Queries == 0 || tl.Replicas != 2 {
		t.Errorf("tail header wrong: %+v", tl)
	}
	if tl.Unhedged.P999Ms <= 0 || tl.Hedged.P999Ms <= 0 {
		t.Errorf("tail legs not measured: %+v", tl)
	}
	if tl.HedgesSent == 0 || tl.HedgesWon == 0 {
		t.Errorf("hedged leg never raced: sent=%d won=%d", tl.HedgesSent, tl.HedgesWon)
	}
	if tl.P999Ratio <= 0 || tl.P999Ratio > 0.5 {
		t.Errorf("tail p999 ratio %v outside (0, 0.5]: unhedged %v ms, hedged %v ms",
			tl.P999Ratio, tl.Unhedged.P999Ms, tl.Hedged.P999Ms)
	}
}
