// Command qofbench regenerates the experiment tables of EXPERIMENTS.md:
// for every performance claim in "Optimizing Queries on Files" (Consens &
// Milo, SIGMOD 1994) it generates a workload, builds the indexes, runs the
// engine and the baselines, and prints one table.
//
// Usage:
//
//	qofbench [-exp all|e1,e4,...] [-quick] [-sizes 1000,5000,20000] [-repeats 5]
//	qofbench -json bench.json [-quick]
//
// With -json the experiment tables are skipped; instead a repeated-query
// workload per qgen domain is measured twice — result cache off and on —
// and ops/sec, allocs/op and cache hit rates are written as JSON
// (see docs/PERFORMANCE.md for how to read the figures).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qof/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e10) or 'all'")
	quick := flag.Bool("quick", false, "use reduced sizes for a fast smoke run")
	sizes := flag.String("sizes", "", "override corpus sizes, e.g. 1000,5000,20000")
	repeats := flag.Int("repeats", 0, "override timed repetitions per cell")
	jsonOut := flag.String("json", "", "write the machine-readable cache benchmark to this file and exit")
	flag.Parse()

	if *jsonOut != "" {
		if err := runJSONBench(*jsonOut, *quick); err != nil {
			fatalf("json bench: %v", err)
		}
		return
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	if *sizes != "" {
		opt.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fatalf("bad -sizes value %q", s)
			}
			opt.Sizes = append(opt.Sizes, n)
		}
	}
	if *repeats > 0 {
		opt.Repeats = *repeats
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(strings.ToLower(id)))
			if !ok {
				fatalf("unknown experiment %q (have e1..e10)", id)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		table, err := e.Run(opt)
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		fmt.Println(table)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qofbench: "+format+"\n", args...)
	os.Exit(1)
}
