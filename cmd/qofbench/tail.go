package main

// The tail-latency benchmark: one shard's primary attempts intermittently
// stall (an injected 40ms delay with 10% probability, the classic
// slow-machine tail), and the same workload runs twice against a
// two-replica daemon — once with hedging disabled and once with a 5ms
// hedge. Unhedged, every stall lands in the client's latency and the
// p999 sits at the full delay; hedged, the timer fires the secondary
// replica and the tail collapses to roughly the hedge delay. The
// committed acceptance bar is hedged p999 ≤ 50% of unhedged p999.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"qof"
	"qof/internal/faultinject"
	"qof/internal/qgen"
	"qof/internal/serve"
)

// tailBench is the tail-latency section of the JSON report.
type tailBench struct {
	Shards      int     `json:"shards"`
	Replicas    int     `json:"replicas"`
	Files       int     `json:"files"`
	Queries     int     `json:"queries"`
	SlowShard   int     `json:"slow_shard"`
	SlowDelayMs float64 `json:"slow_delay_ms"`
	SlowProb    float64 `json:"slow_prob"`
	HedgeMs     float64 `json:"hedge_ms"`

	Unhedged tailLeg `json:"unhedged"`
	Hedged   tailLeg `json:"hedged"`
	// P999Ratio is hedged p999 over unhedged p999; the acceptance bar for
	// this experiment is ≤ 0.5.
	P999Ratio float64 `json:"p999_ratio"`
	// Hedge accounting from the hedged leg's daemon: the tail win must come
	// from hedges actually racing and winning, not from noise.
	HedgesSent uint64 `json:"hedges_sent"`
	HedgesWon  uint64 `json:"hedges_won"`
}

type tailLeg struct {
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

const (
	tailSlowDelay = 40 * time.Millisecond
	tailSlowProb  = 0.1
	tailHedge     = 5 * time.Millisecond
	tailQuery     = `SELECT r FROM References r WHERE r STARTS "Ch"`
)

// runTail executes both legs and computes the ratio. The slow shard is the
// primary of the workload's lexicographically first file, so it is
// guaranteed to own documents and its stalls are guaranteed to sit on the
// query's critical path.
func runTail(quick bool) (tailBench, error) {
	n := 2000
	if quick {
		n = 400
	}
	files := make(map[string]string)
	for i := 0; i < 8; i++ {
		d := qgen.BibTeX(int64(2026 + i))
		files[d.Doc.Name()] = d.Doc.Content()
	}
	first := ""
	for name := range files {
		if first == "" || name < first {
			first = name
		}
	}
	const shards = 4
	slow := serve.ShardOf(first, shards)

	b := tailBench{
		Shards: shards, Replicas: 2, Files: len(files), Queries: n,
		SlowShard:   slow,
		SlowDelayMs: float64(tailSlowDelay.Nanoseconds()) / 1e6,
		SlowProb:    tailSlowProb,
		HedgeMs:     float64(tailHedge.Nanoseconds()) / 1e6,
	}

	var err error
	b.Unhedged, _, err = tailLegRun(files, slow, -1, n)
	if err != nil {
		return b, fmt.Errorf("unhedged leg: %w", err)
	}
	var m serve.MetricsBody
	b.Hedged, m, err = tailLegRun(files, slow, tailHedge, n)
	if err != nil {
		return b, fmt.Errorf("hedged leg: %w", err)
	}
	b.HedgesSent, b.HedgesWon = m.HedgesSent, m.HedgesWon
	if b.Unhedged.P999Ms > 0 {
		b.P999Ratio = b.Hedged.P999Ms / b.Unhedged.P999Ms
	}
	return b, nil
}

// tailLegRun boots a fresh two-replica daemon, installs the seeded
// slow-shard fault (scoped to primary attempts on that shard, so hedges
// and failovers never stall), and drives the workload sequentially —
// each sample is one query's full scatter-gather, with no queueing noise.
func tailLegRun(files map[string]string, slow int, hedge time.Duration, n int) (tailLeg, serve.MetricsBody, error) {
	srv, err := serve.New(serve.Config{
		Schema:      qof.BibTeX(),
		Shards:      4,
		Replicas:    2,
		Parallelism: 2,
		HedgeAfter:  hedge,
	})
	if err != nil {
		return tailLeg{}, serve.MetricsBody{}, err
	}
	if _, err := srv.Publish(files); err != nil {
		return tailLeg{}, serve.MetricsBody{}, err
	}
	spec := fmt.Sprintf("%s#%d=delay:%s%%%g/1994", faultinject.ServeShard, slow, tailSlowDelay, tailSlowProb)
	if err := faultinject.Configure(spec); err != nil {
		return tailLeg{}, serve.MetricsBody{}, err
	}
	defer faultinject.Reset()

	latencies := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		resp, err := srv.Execute(context.Background(), serve.Request{Query: tailQuery})
		if err != nil {
			return tailLeg{}, serve.MetricsBody{}, err
		}
		if !resp.Complete() {
			return tailLeg{}, serve.MetricsBody{}, fmt.Errorf("query %d degraded: %v", i, resp.DegradedError())
		}
		latencies = append(latencies, float64(time.Since(t0).Nanoseconds())/1e6)
	}
	sort.Float64s(latencies)
	return tailLeg{
		P50Ms:  quantileAt(latencies, 0.50),
		P99Ms:  quantileAt(latencies, 0.99),
		P999Ms: quantileAt(latencies, 0.999),
	}, srv.Metrics(), nil
}
