package main

// The serving saturation benchmark: boot the sharded daemon in-process
// behind a real HTTP listener, storm it with concurrent clients well past
// MaxInflight, and report client-observed latency quantiles, throughput,
// the shed rate, and goroutine-leak accounting. The interesting claims are
// operational: under heavy oversubscription the daemon keeps latency for
// admitted queries bounded by shedding the excess (429 + Retry-After)
// instead of queueing, and a full storm leaks nothing.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qof"
	"qof/internal/qgen"
	"qof/internal/serve"
)

// servingBench is the saturation section of the JSON report.
type servingBench struct {
	Clients     int `json:"clients"`
	Shards      int `json:"shards"`
	Files       int `json:"files"`
	MaxInflight int `json:"max_inflight"`
	// Submitted = Ok + Shed; every storm request is accounted for.
	Submitted  int     `json:"submitted"`
	Ok         int     `json:"ok"`
	Shed       int     `json:"shed"`
	ShedRate   float64 `json:"shed_rate"`
	DurationMs float64 `json:"duration_ms"`
	// QPS counts completed (admitted) queries only.
	QPS float64 `json:"qps"`
	// Client-observed latency of successful queries, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// GoroutineLeak is goroutines after the storm drained minus before the
	// daemon existed; the acceptance bar is zero (small transients are
	// waited out before measuring).
	GoroutineLeak int `json:"goroutine_leak"`
}

const servingQuery = `SELECT r FROM References r WHERE r STARTS "Ch"`

// runServing executes the saturation storm: clients concurrent goroutines,
// each submitting requestsPerClient queries over HTTP. MaxInflight is kept
// far below the client count so admission control must shed.
func runServing(quick bool) (servingBench, error) {
	clients, perClient := 1000, 3
	if quick {
		clients, perClient = 200, 2
	}
	before := runtime.NumGoroutine()

	srv, err := serve.New(serve.Config{
		Schema:      qof.BibTeX(),
		Shards:      4,
		Parallelism: 2,
		MaxInflight: 16,
		RetryAfter:  time.Second,
	})
	if err != nil {
		return servingBench{}, err
	}
	files := make(map[string]string)
	for i := 0; i < 8; i++ {
		d := qgen.BibTeX(int64(2026 + i))
		files[d.Doc.Name()] = d.Doc.Content()
	}
	if _, err := srv.Publish(files); err != nil {
		return servingBench{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	target := ts.URL + "/query?q=" + url.QueryEscape(servingQuery)

	b := servingBench{
		Clients: clients, Shards: 4, Files: len(files), MaxInflight: 16,
		Submitted: clients * perClient,
	}
	var ok, shed, other atomic.Int64
	latencies := make([]float64, clients*perClient) // ms; -1 = not a success
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				slot := c*perClient + r
				latencies[slot] = -1
				t0 := time.Now()
				resp, err := client.Get(target)
				if err != nil {
					other.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					latencies[slot] = float64(time.Since(t0).Nanoseconds()) / 1e6
					ok.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	ts.Close()
	client.CloseIdleConnections()

	if n := other.Load(); n > 0 {
		return b, fmt.Errorf("%d storm requests neither served nor shed", n)
	}
	b.Ok, b.Shed = int(ok.Load()), int(shed.Load())
	b.ShedRate = float64(b.Shed) / float64(b.Submitted)
	b.DurationMs = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 {
		b.QPS = float64(b.Ok) / elapsed.Seconds()
	}
	successes := latencies[:0]
	for _, l := range latencies {
		if l >= 0 {
			successes = append(successes, l)
		}
	}
	sort.Float64s(successes)
	b.P50Ms = quantileAt(successes, 0.50)
	b.P99Ms = quantileAt(successes, 0.99)
	b.P999Ms = quantileAt(successes, 0.999)

	// Let transient goroutines (keep-alives, handler tails) park before
	// taking the leak reading.
	deadline := time.Now().Add(10 * time.Second)
	leak := runtime.NumGoroutine() - before
	for leak > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		leak = runtime.NumGoroutine() - before
	}
	if leak < 0 {
		leak = 0
	}
	b.GoroutineLeak = leak

	// The books must balance against the daemon's own counters.
	m := srv.Metrics()
	if int(m.OkTotal) != b.Ok || int(m.ShedTotal) != b.Shed {
		return b, fmt.Errorf("daemon counted ok=%d shed=%d, clients saw %d/%d",
			m.OkTotal, m.ShedTotal, b.Ok, b.Shed)
	}
	return b, nil
}

// quantileAt reads the q-quantile from an ascending slice.
func quantileAt(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
