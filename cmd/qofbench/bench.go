package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"qof/internal/engine"
	"qof/internal/experiments"
	"qof/internal/grammar"
	"qof/internal/index"
	"qof/internal/qgen"
	"qof/internal/xsql"
)

// The -json benchmark: for every qgen domain, run a generated repeated-query
// workload against two engines over the same instance — one with the
// cross-query result cache disabled (baseline) and one with it on — and
// report machine-readable throughput, allocation and cache-hit figures.

// benchReport is the top-level JSON document.
type benchReport struct {
	Quick   bool          `json:"quick"`
	Rounds  int           `json:"rounds"`
	Queries int           `json:"queries_per_domain"`
	Domains []domainBench `json:"domains"`
	// Stress compares a full materializing run against a streaming LIMIT
	// run on the large bibtex corpus; the early-termination payoff.
	Stress stressBench `json:"stress"`
	// Concurrent is the shared-execution thundering-herd comparison on a
	// large partially-indexed corpus.
	Concurrent concurrentBench `json:"concurrent"`
	// Serving storms the sharded HTTP daemon far past its admission limit
	// and reports latency quantiles, shed rate and leak accounting.
	Serving servingBench `json:"serving"`
	// Tail compares tail latency with and without hedged requests when one
	// replica's primary attempts intermittently stall.
	Tail tailBench `json:"tail"`
}

// benchLimitK is the LIMIT used for the limit_k_ops_sec workload and the
// stress comparison.
const benchLimitK = 10

type domainBench struct {
	Name     string    `json:"name"`
	Baseline benchPass `json:"baseline"`
	Cached   benchPass `json:"cached"`
	// Speedup is cached ops/sec over baseline ops/sec for the repeated
	// workload; the result cache's contribution. SpeedupRegression flags a
	// domain where caching made the workload slower — the miss path costs
	// more than the hits recover — so regressions are machine-checkable
	// from the JSON instead of eyeballed.
	Speedup           float64 `json:"speedup"`
	SpeedupRegression bool    `json:"speedup_regression"`
	// LimitKOpsSec is the baseline workload rerun with LIMIT benchLimitK on
	// every query, on the streaming executor with the result cache off
	// (truncated streams never publish to it anyway). Comparing against
	// Baseline.OpsPerSec shows what early termination buys per domain.
	LimitKOpsSec float64 `json:"limit_k_ops_sec"`
	// CancelLatencyUsMax is the worst observed time, in microseconds, for
	// ExecuteContext to return after being handed an already-canceled
	// context — an upper bound on how long the engine's cooperative poll
	// points leave a dead query running. CancelLatencyUsAvg is the mean.
	CancelLatencyUsMax float64 `json:"cancel_latency_us_max"`
	CancelLatencyUsAvg float64 `json:"cancel_latency_us_avg"`
}

type benchPass struct {
	// roundOps is the per-round throughput series behind OpsPerSec, kept
	// for paired speedup ratios; not part of the report.
	roundOps []float64

	OpsPerSec          float64 `json:"ops_per_sec"`
	AllocsPerOp        float64 `json:"allocs_per_op"`
	PlanCacheHitRate   float64 `json:"plan_cache_hit_rate"`
	ResultCacheHitRate float64 `json:"result_cache_hit_rate"`
	// PeakBytes is the largest per-query Stats.PeakBytes observed during
	// the timed rounds: the high-water mark of region-buffer memory the
	// worst query in the workload needs.
	PeakBytes int `json:"peak_bytes"`
}

// stressBench reports the LIMIT early-termination experiment: the paper's
// Chang query over a large reference list indexed only at the Reference
// level, so phase 2 must parse candidates and filter. The materializing
// executor drains every candidate; the streaming executor with LIMIT
// benchLimitK stops after the first matches. Times are the best of
// stressRepeats runs; peaks are deterministic accounting.
type stressBench struct {
	Refs                int     `json:"refs"`
	Query               string  `json:"query"`
	LimitK              int     `json:"limit_k"`
	FullMaterializingMs float64 `json:"full_materializing_ms"`
	FullPeakBytes       int     `json:"full_peak_bytes"`
	LimitStreamingMs    float64 `json:"limit_streaming_ms"`
	LimitPeakBytes      int     `json:"limit_peak_bytes"`
	// TimeRatio and PeakRatio are streaming-LIMIT over full-materializing;
	// the acceptance bar for this experiment is both ≤ 0.2.
	TimeRatio float64 `json:"time_ratio"`
	PeakRatio float64 `json:"peak_ratio"`
}

// runJSONBench writes the benchmark report to path. quick shrinks the
// workload for CI smoke runs.
func runJSONBench(path string, quick bool) error {
	rounds, nQueries := 20, 60
	if quick {
		rounds, nQueries = 6, 25
	}
	report := benchReport{Quick: quick, Rounds: rounds, Queries: nQueries}
	for _, d := range qgen.Domains(1994) {
		queries := benchQueries(d, nQueries)
		if len(queries) == 0 {
			return fmt.Errorf("domain %s: no runnable queries generated", d.Name)
		}
		spec := d.Specs[0]
		in, _, err := d.Cat.Grammar.BuildInstance(d.Doc, spec)
		if err != nil {
			return fmt.Errorf("domain %s: %w", d.Name, err)
		}
		db := domainBench{Name: d.Name}
		baseline := engine.New(d.Cat, in)
		baseline.DisableResultCache()
		cached := engine.New(d.Cat, in)
		passes, err := runPaired([]*engine.Engine{baseline, cached}, queries, rounds)
		if err != nil {
			return fmt.Errorf("domain %s: %w", d.Name, err)
		}
		db.Baseline, db.Cached = passes[0], passes[1]
		db.Speedup = pairedSpeedup(db.Baseline.roundOps, db.Cached.roundOps)
		db.SpeedupRegression = db.Speedup > 0 && db.Speedup < 1
		db.LimitKOpsSec, err = limitPass(d, in, queries, rounds)
		if err != nil {
			return fmt.Errorf("domain %s: %w", d.Name, err)
		}
		db.CancelLatencyUsMax, db.CancelLatencyUsAvg, err = cancelLatency(d, in, queries)
		if err != nil {
			return fmt.Errorf("domain %s: %w", d.Name, err)
		}
		report.Domains = append(report.Domains, db)
	}
	stress, err := runStress(quick)
	if err != nil {
		return fmt.Errorf("stress: %w", err)
	}
	report.Stress = stress
	report.Concurrent, err = runConcurrent(quick)
	if err != nil {
		return fmt.Errorf("concurrent: %w", err)
	}
	serving, err := runServing(quick)
	if err != nil {
		return fmt.Errorf("serving: %w", err)
	}
	report.Serving = serving
	report.Tail, err = runTail(quick)
	if err != nil {
		return fmt.Errorf("tail: %w", err)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// limitPass reruns the workload with LIMIT benchLimitK on every query,
// against a fresh streaming engine with the result cache off, and returns
// ops/sec. The LIMIT overrides any the generated query carried.
func limitPass(d *qgen.Domain, in *index.Instance, queries []*xsql.Query, rounds int) (float64, error) {
	limited := make([]*xsql.Query, len(queries))
	for i, q := range queries {
		lq := *q
		lq.Limit = benchLimitK
		limited[i] = &lq
	}
	eng := engine.New(d.Cat, in)
	eng.DisableResultCache()
	pass, err := runPass(eng, limited, rounds)
	if err != nil {
		return 0, err
	}
	return pass.OpsPerSec, nil
}

// stressRepeats is how many times each stress leg runs; the best (minimum)
// time is reported to damp scheduler noise.
const stressRepeats = 3

// runStress builds the large fully-indexed bibtex corpus and runs a
// low-selectivity prefix query — every generated key starts with "Key", so
// the answer is the whole corpus and the candidate chain's intermediate
// results are corpus-sized. The materializing executor buffers all of them
// plus the full answer; the streaming executor with LIMIT benchLimitK pulls
// only the prefix of every operand it needs to emit the first rows.
func runStress(quick bool) (stressBench, error) {
	refs := 20000
	if quick {
		refs = 2000
	}
	setup, err := experiments.NewBibtexSetup(refs, grammar.IndexSpec{}, nil)
	if err != nil {
		return stressBench{}, err
	}
	const query = `SELECT r FROM References r WHERE r.Key STARTS "Key"`
	full, err := xsql.Parse(query)
	if err != nil {
		return stressBench{}, err
	}
	lq := *full
	lq.Limit = benchLimitK

	s := stressBench{Refs: refs, Query: query, LimitK: benchLimitK}
	s.FullMaterializingMs, s.FullPeakBytes, err = stressLeg(setup, full, true)
	if err != nil {
		return stressBench{}, fmt.Errorf("materializing leg: %w", err)
	}
	s.LimitStreamingMs, s.LimitPeakBytes, err = stressLeg(setup, &lq, false)
	if err != nil {
		return stressBench{}, fmt.Errorf("streaming leg: %w", err)
	}
	if s.FullMaterializingMs > 0 {
		s.TimeRatio = s.LimitStreamingMs / s.FullMaterializingMs
	}
	if s.FullPeakBytes > 0 {
		s.PeakRatio = float64(s.LimitPeakBytes) / float64(s.FullPeakBytes)
	}
	return s, nil
}

// stressLeg runs q on a fresh engine over the stress instance, result cache
// off, and returns the best wall time of stressRepeats runs plus the peak
// region-buffer bytes of the last run (the accounting is deterministic).
func stressLeg(setup *experiments.BibtexSetup, q *xsql.Query, materializing bool) (bestMs float64, peak int, err error) {
	eng := engine.New(setup.Cat, setup.Instance)
	eng.Materializing = materializing
	eng.DisableResultCache()
	for i := 0; i < stressRepeats; i++ {
		start := time.Now()
		res, rerr := eng.Execute(q)
		ms := float64(time.Since(start).Nanoseconds()) / 1e6
		if rerr != nil {
			return 0, 0, rerr
		}
		if i == 0 || ms < bestMs {
			bestMs = ms
		}
		peak = res.Stats.PeakBytes
	}
	return bestMs, peak, nil
}

// cancelLatency measures, per domain, how quickly ExecuteContext abandons
// work once its context is canceled: every workload query runs on a fresh
// engine under an already-canceled context, and the wall time until the
// call returns is the cancellation latency. A pre-canceled context is the
// worst and most reproducible case — every poll point fires on its first
// check, so the measurement reflects poll granularity (including the
// uncancelable compile prefix), not scheduler timing.
func cancelLatency(d *qgen.Domain, in *index.Instance, queries []*xsql.Query) (maxUs, avgUs float64, err error) {
	eng := engine.New(d.Cat, in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var total float64
	for _, q := range queries {
		start := time.Now()
		_, qerr := eng.ExecuteContext(ctx, q, engine.Limits{})
		us := float64(time.Since(start).Nanoseconds()) / 1e3
		if qerr != nil && !errors.Is(qerr, context.Canceled) {
			return 0, 0, fmt.Errorf("canceled run of %q: unexpected error: %w", q, qerr)
		}
		if us > maxUs {
			maxUs = us
		}
		total += us
	}
	if len(queries) > 0 {
		avgUs = total / float64(len(queries))
	}
	return maxUs, avgUs, nil
}

// benchQueries generates n distinct queries the domain's engine accepts
// (qgen deliberately emits some queries with unindexed names; those error
// identically on every engine, so they carry no benchmark signal).
func benchQueries(d *qgen.Domain, n int) []*xsql.Query {
	g := qgen.NewQueryGen(d, 7)
	in, _, err := d.Cat.Grammar.BuildInstance(d.Doc, d.Specs[0])
	if err != nil {
		return nil
	}
	probe := engine.New(d.Cat, in)
	var out []*xsql.Query
	for tries := 0; len(out) < n && tries < 20*n; tries++ {
		q := g.Query()
		if _, err := probe.Execute(q); err != nil {
			continue
		}
		out = append(out, q)
	}
	return out
}

// runPaired measures several engines over the same workload with their
// rounds interleaved — engine A round 1, engine B round 1, engine A round 2,
// … — so scheduler and frequency drift hits every engine alike. Sequential
// whole-pass timing made the per-domain speedups swing ±15% run to run,
// drowning the real cache effect.
func runPaired(engines []*engine.Engine, queries []*xsql.Query, rounds int) ([]benchPass, error) {
	// Warm-up round per engine: fault in lazy index structures (universe,
	// sistring array) so the timed rounds measure steady-state serving.
	for _, eng := range engines {
		for _, q := range queries {
			if _, err := eng.Execute(q); err != nil {
				return nil, err
			}
		}
	}
	type acc struct {
		roundOps []float64 // per-round throughput
		ops      int
		mallocs  uint64
		peak     int
	}
	accs := make([]acc, len(engines))
	var ms0, ms1 runtime.MemStats
	for r := 0; r < rounds; r++ {
		for k := range engines {
			// Alternate the leg order every round so any cost of going
			// first (cold branch predictors, a pending GC) is split evenly.
			i := k
			if r%2 == 1 {
				i = len(engines) - 1 - k
			}
			eng := engines[i]
			a := &accs[i]
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			// Several sweeps per timed round: the round must be long enough
			// that a few milliseconds of preemption by a noisy neighbour
			// cannot swing its throughput.
			const sweeps = 3
			for s := 0; s < sweeps; s++ {
				for _, q := range queries {
					res, err := eng.Execute(q)
					if err != nil {
						return nil, err
					}
					if res.Stats.PeakBytes > a.peak {
						a.peak = res.Stats.PeakBytes
					}
					a.ops++
				}
			}
			if elapsed := time.Since(start); elapsed > 0 {
				a.roundOps = append(a.roundOps, float64(sweeps*len(queries))/elapsed.Seconds())
			}
			runtime.ReadMemStats(&ms1)
			a.mallocs += ms1.Mallocs - ms0.Mallocs
		}
	}
	passes := make([]benchPass, len(engines))
	for i, eng := range engines {
		a := accs[i]
		pass := benchPass{PeakBytes: a.peak, roundOps: a.roundOps}
		// Median over the rounds: a GC cycle or scheduler stall landing in
		// one leg's round must not decide a whole domain's speedup.
		pass.OpsPerSec = median(a.roundOps)
		pass.AllocsPerOp = float64(a.mallocs) / float64(a.ops)
		ph, pm, rh, rm := eng.CacheCounters()
		if ph+pm > 0 {
			pass.PlanCacheHitRate = float64(ph) / float64(ph+pm)
		}
		if rh+rm > 0 {
			pass.ResultCacheHitRate = float64(rh) / float64(rh+rm)
		}
		passes[i] = pass
	}
	return passes, nil
}

// pairedSpeedup estimates cached-over-baseline throughput as the median of
// the per-round ratios. The rounds of the two engines are interleaved in
// time, so each ratio compares near-simultaneous measurements and slow
// drift (frequency scaling, a noisy neighbour) cancels; the median then
// discards rounds where a GC cycle landed in one leg.
func pairedSpeedup(base, cached []float64) float64 {
	n := min(len(base), len(cached))
	ratios := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if base[i] > 0 {
			ratios = append(ratios, cached[i]/base[i])
		}
	}
	return median(ratios)
}

// median returns the middle value (or midpoint of the middle pair) of xs.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// runPass executes the query list rounds times and measures throughput,
// allocations per query, and cache hit rates.
func runPass(eng *engine.Engine, queries []*xsql.Query, rounds int) (benchPass, error) {
	// Warm-up round: fault in lazy index structures (universe, sistring
	// array) so the timed rounds measure steady-state serving.
	for _, q := range queries {
		if _, err := eng.Execute(q); err != nil {
			return benchPass{}, err
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ops, peak := 0, 0
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			res, err := eng.Execute(q)
			if err != nil {
				return benchPass{}, err
			}
			if res.Stats.PeakBytes > peak {
				peak = res.Stats.PeakBytes
			}
			ops++
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	pass := benchPass{PeakBytes: peak}
	if elapsed > 0 {
		pass.OpsPerSec = float64(ops) / elapsed.Seconds()
	}
	pass.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
	ph, pm, rh, rm := eng.CacheCounters()
	if ph+pm > 0 {
		pass.PlanCacheHitRate = float64(ph) / float64(ph+pm)
	}
	if rh+rm > 0 {
		pass.ResultCacheHitRate = float64(rh) / float64(rh+rm)
	}
	return pass, nil
}
