package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if got := run([]string{"-list"}, io.Discard); got != 0 {
		t.Errorf("-list exited %d, want 0", got)
	}
}

func TestRunCleanPackage(t *testing.T) {
	if got := run([]string{"-run", "lockcheck,epochbump", "../../internal/region"}, io.Discard); got != 0 {
		t.Errorf("clean package exited %d, want 0", got)
	}
}

func TestRunFindsSeededBugs(t *testing.T) {
	// The lockcheck fixture carries deliberate violations, so the driver
	// must exit 1 on it.
	if got := run([]string{"-run", "lockcheck", "../../internal/lint/testdata/lockcheck"}, io.Discard); got != 1 {
		t.Errorf("seeded-bug fixture exited %d, want 1", got)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	if got := run([]string{"-run", "nosuch"}, io.Discard); got != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if got := run([]string{"-definitely-not-a-flag"}, io.Discard); got != 2 {
		t.Errorf("bad flag exited %d, want 2", got)
	}
}

// TestRunJSONGolden pins the -json wire format: one object per line with
// pos/analyzer/message, in RunPackage's deterministic order. Positions are
// normalized to their testdata-relative form so the golden file is
// machine-independent.
func TestRunJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if got := run([]string{"-json", "-run", "lockcheck", "../../internal/lint/testdata/lockcheck"}, &buf); got != 1 {
		t.Fatalf("seeded-bug fixture exited %d, want 1", got)
	}
	var norm strings.Builder
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("not one JSON object per line: %q: %v", line, err)
		}
		if f.Pos == "" || f.Analyzer == "" || f.Message == "" {
			t.Fatalf("incomplete finding: %q", line)
		}
		i := strings.Index(f.Pos, "testdata")
		if i < 0 {
			t.Fatalf("pos %q does not point into testdata", f.Pos)
		}
		f.Pos = filepath.ToSlash(f.Pos[i:])
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		norm.Write(b)
		norm.WriteByte('\n')
	}
	want, err := os.ReadFile(filepath.Join("testdata", "json.golden"))
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	if norm.String() != string(want) {
		t.Errorf("-json output drifted from golden.\ngot:\n%swant:\n%s", norm.String(), want)
	}
}

func TestFirstLine(t *testing.T) {
	if got := firstLine("one\ntwo"); got != "one" {
		t.Errorf("firstLine = %q", got)
	}
	if got := firstLine("solo"); got != "solo" {
		t.Errorf("firstLine = %q", got)
	}
}
