package main

import "testing"

func TestRunList(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("-list exited %d, want 0", got)
	}
}

func TestRunCleanPackage(t *testing.T) {
	if got := run([]string{"-run", "lockcheck,epochbump", "../../internal/region"}); got != 0 {
		t.Errorf("clean package exited %d, want 0", got)
	}
}

func TestRunFindsSeededBugs(t *testing.T) {
	// The lockcheck fixture carries deliberate violations, so the driver
	// must exit 1 on it.
	if got := run([]string{"-run", "lockcheck", "../../internal/lint/testdata/lockcheck"}); got != 1 {
		t.Errorf("seeded-bug fixture exited %d, want 1", got)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	if got := run([]string{"-run", "nosuch"}); got != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", got)
	}
}

func TestRunBadFlag(t *testing.T) {
	if got := run([]string{"-definitely-not-a-flag"}); got != 2 {
		t.Errorf("bad flag exited %d, want 2", got)
	}
}

func TestFirstLine(t *testing.T) {
	if got := firstLine("one\ntwo"); got != "one" {
		t.Errorf("firstLine = %q", got)
	}
	if got := firstLine("solo"); got != "solo" {
		t.Errorf("firstLine = %q", got)
	}
}
