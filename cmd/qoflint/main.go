// Command qoflint runs qof's project-specific analyzers (see
// docs/LINTING.md) over packages of this module, in the spirit of a
// golang.org/x/tools multichecker but self-contained: the analyzers
// enforce the engine's concurrency, caching and region invariants that
// ordinary vet checks cannot know about.
//
// Usage:
//
//	go run ./cmd/qoflint ./...             # whole module
//	go run ./cmd/qoflint ./internal/region # one package
//	go run ./cmd/qoflint -run lockcheck,epochbump ./...
//	go run ./cmd/qoflint -json ./...
//	go run ./cmd/qoflint -list
//
// Exit status: 0 clean, 1 findings, 2 operational failure. Findings are
// printed as file:line:col: message [analyzer], or with -json as one JSON
// object per line ({"pos": ..., "analyzer": ..., "message": ...}) for
// machine consumers. A finding is suppressed by a
// "//qoflint:allow <analyzer> <reason>" comment on, or just above, the
// offending line (or in the function's doc comment to cover the whole
// function).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qof/internal/lint"
	"qof/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// jsonFinding is the -json wire shape: stable field names, one object per
// line, so CI artifacts diff cleanly and jq-style filters stay trivial.
type jsonFinding struct {
	Pos      string `json:"pos"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("qoflint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as one JSON object per line")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "qoflint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := loader.New(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "qoflint:", err)
		return 2
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qoflint:", err)
		return 2
	}
	enc := json.NewEncoder(out)
	findings := 0
	for _, pkg := range pkgs {
		found, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qoflint:", err)
			return 2
		}
		for _, f := range found {
			if *asJSON {
				if err := enc.Encode(jsonFinding{Pos: f.Pos.String(), Analyzer: f.Analyzer, Message: f.Message}); err != nil {
					fmt.Fprintln(os.Stderr, "qoflint:", err)
					return 2
				}
			} else {
				fmt.Fprintln(out, f)
			}
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "qoflint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
