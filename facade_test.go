package qof_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"qof"
	"qof/internal/bibtex"
)

func TestFacadeQuery(t *testing.T) {
	schema := qof.BibTeX()
	file, err := schema.Index("sample.bib", bibtex.SampleEntry)
	if err != nil {
		t.Fatal(err)
	}
	res, err := file.Query(`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || len(res.Spans) != 1 {
		t.Fatalf("results = %+v", res)
	}
	if !strings.Contains(res.Spans[0].Text, "Corl82a") {
		t.Errorf("span text = %q", res.Spans[0].Text[:40])
	}
	if !res.Stats.Exact || res.Stats.FullScan {
		t.Errorf("stats = %+v", res.Stats)
	}
	if !strings.Contains(res.Explain(), "Reference") {
		t.Error("Explain")
	}
	// Projection fills Values.
	proj, err := file.Query(`SELECT r.Key FROM References r`)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 1 || proj.Values[0] != "Corl82a" {
		t.Fatalf("projection = %+v", proj.Values)
	}
	// Bad query.
	if _, err := file.Query(`SELECT`); err == nil {
		t.Error("bad query accepted")
	}
}

func TestFacadeEval(t *testing.T) {
	file, err := qof.BibTeX().Index("sample.bib", bibtex.SampleEntry)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := file.Eval(`equals(Last_Name, "Chang") < Authors`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Text != "Chang" {
		t.Fatalf("spans = %+v", spans)
	}
	if _, err := file.Eval(`>>>`); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestFacadePartialAndScoped(t *testing.T) {
	content := bibtex.SampleEntry
	file, err := qof.BibTeX().Index("s.bib", content,
		qof.WithRegions("Reference"),
		qof.WithScopedRegion("Last_Name", "Authors"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := file.Query(`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("results = %d", res.Len())
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	schema := qof.BibTeX()
	file, err := schema.Index("s.bib", bibtex.SampleEntry)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := file.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := schema.Load(&buf, "s.bib", bibtex.SampleEntry)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Query(`SELECT r.Key FROM References r WHERE r CONTAINS "Chang"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("loaded query results = %d", res.Len())
	}
	if loaded.Name() != "s.bib" {
		t.Error("Name")
	}
}

func TestFacadeReplace(t *testing.T) {
	file, err := qof.BibTeX().Index("s.bib", bibtex.SampleEntry)
	if err != nil {
		t.Fatal(err)
	}
	res, err := file.Query(`SELECT r FROM References r`)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(bibtex.SampleEntry, "Corl82a", "Edited99", 1)
	edited = strings.TrimSuffix(edited, "\n")
	file2, err := file.Replace("Reference", res.Spans[0], edited)
	if err != nil {
		t.Fatal(err)
	}
	got, err := file2.Query(`SELECT r.Key FROM References r`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Values[0] != "Edited99" {
		t.Fatalf("after replace: %+v", got.Values)
	}
	// Original file unchanged.
	if !strings.Contains(file.Content(), "Corl82a") {
		t.Error("receiver mutated")
	}
}

func TestFacadeCorpus(t *testing.T) {
	schema := qof.BibTeX()
	corpus := schema.NewCorpus()
	if err := corpus.Add("a.bib", bibtex.SampleEntry); err != nil {
		t.Fatal(err)
	}
	cfg := bibtex.DefaultConfig(5)
	gen, _ := bibtex.Generate(cfg)
	if err := corpus.Add("b.bib", gen); err != nil {
		t.Fatal(err)
	}
	hits, err := corpus.Query(`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].File != "a.bib" || hits[0].Values[0] != "Corl82a" {
		t.Fatalf("hits = %+v", hits)
	}

	// AddAll with parallel builds answers identically (files sort by name).
	bulk := schema.NewCorpus(qof.WithParallelism(2))
	if err := bulk.AddAll(map[string]string{"a.bib": bibtex.SampleEntry, "b.bib": gen}); err != nil {
		t.Fatal(err)
	}
	bulkHits, err := bulk.Query(`SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bulkHits) != 1 || bulkHits[0].File != "a.bib" || bulkHits[0].Values[0] != "Corl82a" {
		t.Fatalf("AddAll hits = %+v", bulkHits)
	}
}

func TestFacadeAdvise(t *testing.T) {
	names, report, err := qof.BibTeX().Advise(
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || !strings.Contains(report, "recommended") {
		t.Fatalf("advise: %v\n%s", names, report)
	}
	if _, _, err := qof.BibTeX().Advise(`SELECT`); err == nil {
		t.Error("bad query accepted")
	}
}

func TestFacadeRIG(t *testing.T) {
	if !strings.Contains(qof.BibTeX().RIG(), "Authors -> Name") {
		t.Error("RIG")
	}
}

func TestSchemaBuilder(t *testing.T) {
	b := qof.NewSchemaBuilder("Log")
	b.Terminal("Word", `[a-z]+`).
		Terminal("Num", `[0-9]+`).
		Rule("Log", qof.Rep("Line", "")).
		Rule("Line", qof.Lit("> "), qof.NT("Code"), qof.Lit(":"), qof.NT("Msg")).
		Rule("Code", qof.Term("Num")).
		Rule("Msg", qof.Term("Word")).
		BindClass("Lines", "Line")
	schema, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	file, err := schema.Index("x.log", "> 42: hello\n> 7: world\n> 42: again\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := file.Query(`SELECT l.Msg FROM Lines l WHERE l.Code = "42"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Values[0] != "hello" || res.Values[1] != "again" {
		t.Fatalf("results = %+v", res.Values)
	}
	// Builder error paths.
	if _, err := qof.NewSchemaBuilder("S").Terminal("T", `[`).Build(); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := qof.NewSchemaBuilder("S").Build(); err == nil {
		t.Error("empty grammar accepted")
	}
	// SkipWhitespace off.
	strict, err := qof.NewSchemaBuilder("S").
		Terminal("N", `[0-9]+`).
		Rule("S", qof.Lit("a"), qof.NT("V")).
		Rule("V", qof.Term("N")).
		SkipWhitespace(false).
		BindClass("Vs", "V").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Index("d", "a 1"); err == nil {
		t.Error("space accepted with skipping off")
	}
}

func TestFacadeInsertDelete(t *testing.T) {
	file, err := qof.BibTeX().Index("s.bib", bibtex.SampleEntry)
	if err != nil {
		t.Fatal(err)
	}
	res, err := file.Query(`SELECT r FROM References r`)
	if err != nil {
		t.Fatal(err)
	}
	second := strings.Replace(bibtex.SampleEntry, "Corl82a", "Added01", 1)
	file2, err := file.InsertAfter("Reference", res.Spans[0], "\n"+strings.TrimSuffix(second, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	keys, err := file2.Query(`SELECT r.Key FROM References r`)
	if err != nil {
		t.Fatal(err)
	}
	if keys.Len() != 2 || keys.Values[1] != "Added01" {
		t.Fatalf("after insert: %v", keys.Values)
	}
	// Delete the original.
	objs, err := file2.Query(`SELECT r FROM References r WHERE r.Key = "Corl82a"`)
	if err != nil {
		t.Fatal(err)
	}
	file3, err := file2.Delete("Reference", objs.Spans[0])
	if err != nil {
		t.Fatal(err)
	}
	left, err := file3.Query(`SELECT r.Key FROM References r`)
	if err != nil {
		t.Fatal(err)
	}
	if left.Len() != 1 || left.Values[0] != "Added01" {
		t.Fatalf("after delete: %v", left.Values)
	}
}

// TestFacadeConcurrentQueries shares one File and one Corpus among many
// goroutines (with WithParallelism engaged on both) and checks every
// result against a sequential baseline. Run under -race it proves the
// public API is safe for concurrent readers.
func TestFacadeConcurrentQueries(t *testing.T) {
	content, _ := bibtex.Generate(bibtex.DefaultConfig(50))
	file, err := qof.BibTeX().Index("c.bib", content, qof.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	corpus := qof.BibTeX().NewCorpus(qof.WithParallelism(4))
	if err := corpus.Add("a.bib", bibtex.SampleEntry); err != nil {
		t.Fatal(err)
	}
	if err := corpus.Add("c.bib", content); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"`,
		`SELECT r.Key FROM References r WHERE r.Editors.Name.Last_Name = "Chang"`,
		`SELECT r FROM References r WHERE r.Editors.Name.Last_Name = r.Authors.Name.Last_Name`,
		`SELECT r.Key FROM References r`,
	}
	fileWant := make([]string, len(queries))
	corpusWant := make([]string, len(queries))
	for i, q := range queries {
		res, err := file.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		fileWant[i] = fmt.Sprintf("%v|%v", res.Spans, res.Values)
		hits, err := corpus.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		corpusWant[i] = fmt.Sprintf("%v", hits)
	}
	// Repeat queries must now be served from the plan cache.
	res, err := file.Query(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCached {
		t.Error("repeat query should report Stats.PlanCached")
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				for off := range queries {
					i := (w + r + off) % len(queries)
					res, err := file.Query(queries[i])
					if err != nil {
						errc <- err
						return
					}
					if got := fmt.Sprintf("%v|%v", res.Spans, res.Values); got != fileWant[i] {
						errc <- fmt.Errorf("file result diverged for %s", queries[i])
						return
					}
					hits, err := corpus.Query(queries[i])
					if err != nil {
						errc <- err
						return
					}
					if got := fmt.Sprintf("%v", hits); got != corpusWant[i] {
						errc <- fmt.Errorf("corpus result diverged for %s", queries[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
