//go:build !race

package qof_test

import "time"

// The headline bound: a 1ms-deadline query on the stress corpus must
// return within 50ms (see docs/ROBUSTNESS.md). race_enabled_test.go
// relaxes this under the race detector's instrumentation overhead.
const deadlineLatencyBound = 50 * time.Millisecond
